package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lam/internal/lamerr"
	"lam/internal/ml"
	"lam/internal/online"
	"lam/internal/registry"
	"lam/internal/rollout"
	"lam/internal/telemetry"
)

// Server serves predictions from one registry.
type Server struct {
	reg *registry.Registry
	// Workers bounds per-request batch parallelism for regressor
	// models; <= 0 means the process default.
	Workers int
	// Layout is the traversal layout applied to every model the server
	// loads or swaps in (lam-serve -layout). LayoutDefault keeps the
	// process default (branchless implicit-left). A model that cannot
	// take the layout — e.g. a quantized layout over a non-tree or
	// already-quantized model — fails its load loudly rather than
	// serving with a silently different speed/accuracy profile.
	Layout ml.Layout
	// Metrics is the server's counter set (GET /metrics), handles into
	// Telemetry resolved by New; exported so tests and embedders can
	// read it.
	Metrics Metrics
	// Telemetry is the metric registry behind Metrics and the
	// Prometheus text exposition at GET /metrics. Created by New.
	Telemetry *telemetry.Registry
	// Tracer records per-request traces into a bounded ring (GET
	// /trace/recent). Created by New; set Slow and Logger before
	// Handler to enable slow-trace logging (-trace-slow).
	Tracer *telemetry.Recorder
	// Log, when set, receives the server's structured log lines (hot
	// swaps); nil keeps the server silent.
	Log *slog.Logger
	// Coalesce enables micro-batch coalescing of single-row /predict
	// requests when MaxBatch > 1 (see CoalesceConfig). Set before
	// Handler; the zero value leaves coalescing off.
	Coalesce CoalesceConfig
	// Admit bounds /predict concurrency when MaxInflight > 0 (see
	// AdmitConfig). Set before Handler; the zero value admits
	// everything.
	Admit AdmitConfig
	// WarmNames lists models that must be resident in the hot-swap
	// pointer before GET /readyz reports ready — the fleet-admission
	// gate a gateway health-checks before routing traffic here. Set
	// before Handler; Warm loads them.
	WarmNames []string
	// InjectLatency, when > 0, sleeps that long inside every /predict
	// while holding its admission slot. It is a fault-injection aid for
	// fleet and capacity testing (emulating slower replicas or
	// constrained hardware so routing, shedding and spill-over can be
	// exercised deterministically); it must stay 0 in production.
	InjectLatency time.Duration

	// online is the adaptation plane, nil until AttachOnline.
	online *online.Plane
	// rollout is the progressive-delivery controller, nil until
	// AttachRollout; shadowDiv is its shadow-divergence histogram.
	rollout   *rollout.Controller
	shadowDiv *telemetry.Histogram
	// co and admit are built by Handler from Coalesce and Admit.
	co    *coalescer
	admit *admission

	// latest holds one *atomic.Pointer[registry.Model] per name: the
	// hot-swap slot "latest" requests read lock-free.
	latest sync.Map
	// loading holds one *sync.Mutex per name, taken only while a stale
	// latest pointer is refreshed from disk: it single-flights the
	// artifact deserialization so a burst of cold requests costs one
	// decode, not one per request.
	loading sync.Map

	// mu guards the version-pinned cache only; the latest path never
	// takes it.
	mu    sync.RWMutex
	cache map[string]*registry.Model // key: name@version

	// teleMu guards modelTele, the per-(model, version) labeled series
	// cache. The predict fast path is one RLock + struct-keyed map
	// lookup — no allocation; registration happens once per loaded
	// version.
	teleMu    sync.RWMutex
	modelTele map[modelKey]*modelTelemetry
}

// modelKey identifies one (model, version) for the labeled-series
// cache without retaining the loaded model itself.
type modelKey struct {
	name    string
	version int
}

// traceRingSize bounds /trace/recent: enough to find a slow outlier
// reported by lam-loadgen moments earlier, small enough to never
// matter for memory.
const traceRingSize = 256

// New returns a server backed by reg.
func New(reg *registry.Registry) *Server {
	s := &Server{
		reg:       reg,
		cache:     make(map[string]*registry.Model),
		modelTele: make(map[modelKey]*modelTelemetry),
	}
	s.Telemetry = telemetry.NewRegistry()
	s.Metrics = newMetrics(s.Telemetry)
	s.Tracer = telemetry.NewRecorder(traceRingSize)
	return s
}

// modelTeleFor resolves the per-(model, version) labeled counters,
// registering them on first use.
func (s *Server) modelTeleFor(m *registry.Model) *modelTelemetry {
	key := modelKey{name: m.Meta.Name, version: m.Meta.Version}
	s.teleMu.RLock()
	mt := s.modelTele[key]
	s.teleMu.RUnlock()
	if mt != nil {
		return mt
	}
	ver := strconv.Itoa(key.version)
	mt = &modelTelemetry{
		ok: s.Telemetry.Counter("lam_model_predict_requests_total",
			"Completed /predict requests per model version and outcome",
			telemetry.L("model", key.name), telemetry.L("version", ver), telemetry.L("outcome", "ok")),
		err: s.Telemetry.Counter("lam_model_predict_requests_total",
			"Completed /predict requests per model version and outcome",
			telemetry.L("model", key.name), telemetry.L("version", ver), telemetry.L("outcome", "error")),
		rows: s.Telemetry.Counter("lam_model_predict_rows_total",
			"Rows scored per model version",
			telemetry.L("model", key.name), telemetry.L("version", ver)),
	}
	s.teleMu.Lock()
	if existing, ok := s.modelTele[key]; ok {
		mt = existing
	} else {
		s.modelTele[key] = mt
	}
	s.teleMu.Unlock()
	return mt
}

// AttachOnline wires an online adaptation plane into the server: the
// /observe and /models/{name}/drift endpoints start serving, and every
// version the plane's retrainer publishes is immediately swapped into
// the latest pointer. Call before Handler.
func (s *Server) AttachOnline(p *online.Plane) {
	s.online = p
	if p.Tracer == nil {
		p.Tracer = s.Tracer
	}
	if p.Log == nil {
		p.Log = s.Log
	}
	p.OnPublish = func(meta registry.Meta) {
		// Warm and swap eagerly so the first post-publish request does
		// not pay the deserialization; the per-request version check
		// would pick the new version up regardless.
		_, _ = s.Reload(meta.Name)
	}
	// Online activity is exposed as scrape-time collectors: the plane's
	// own state stays the source of truth instead of being mirrored
	// into slots.
	counter := func(get func(online.Counters) uint64) func(func([]telemetry.Label, float64)) {
		return func(emit func([]telemetry.Label, float64)) {
			emit(nil, float64(get(p.Counters())))
		}
	}
	s.Telemetry.CollectFunc("lam_online_observations_total", "Ground-truth observations ingested by the online plane",
		telemetry.TypeCounter, counter(func(c online.Counters) uint64 { return c.Observations }))
	s.Telemetry.CollectFunc("lam_online_drift_trips_total", "Drift-detector trips",
		telemetry.TypeCounter, counter(func(c online.Counters) uint64 { return c.Trips }))
	s.Telemetry.CollectFunc("lam_online_retrains_started_total", "Background retrains started",
		telemetry.TypeCounter, counter(func(c online.Counters) uint64 { return c.RetrainsStarted }))
	s.Telemetry.CollectFunc("lam_online_retrains_published_total", "Retrains that published an improved version",
		telemetry.TypeCounter, counter(func(c online.Counters) uint64 { return c.RetrainsPublished }))
	s.Telemetry.CollectFunc("lam_online_retrains_discarded_total", "Retrains discarded for not improving on holdout",
		telemetry.TypeCounter, counter(func(c online.Counters) uint64 { return c.RetrainsDiscarded }))
	s.Telemetry.CollectFunc("lam_online_retrain_errors_total", "Retrain attempts that failed",
		telemetry.TypeCounter, counter(func(c online.Counters) uint64 { return c.RetrainErrors }))
	// Per-version served accuracy: the signal a progressive-delivery
	// controller compares across versions.
	s.Telemetry.CollectFunc("lam_served_ape", "Served absolute-percentage-error quantiles per model version",
		telemetry.TypeGauge, func(emit func([]telemetry.Label, float64)) {
			for _, a := range p.ServedAPE() {
				model := telemetry.L("model", a.Model)
				version := telemetry.L("version", strconv.Itoa(a.Version))
				emit([]telemetry.Label{model, version, telemetry.L("quantile", "0.5")}, a.P50)
				emit([]telemetry.Label{model, version, telemetry.L("quantile", "0.9")}, a.P90)
				emit([]telemetry.Label{model, version, telemetry.L("quantile", "0.99")}, a.P99)
			}
		})
}

// Handler returns the service's HTTP routes, materialising the
// coalescing and admission planes from the Coalesce and Admit configs.
func (s *Server) Handler() http.Handler {
	if s.Coalesce.enabled() {
		s.co = newCoalescer(s.Coalesce, &s.Metrics)
	}
	if s.Admit.enabled() {
		s.admit = newAdmission(s.Admit, &s.Metrics)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /models", s.handleModels)
	mux.Handle("GET /metrics", s.Telemetry.Handler())
	mux.Handle("GET /trace/recent", s.Tracer.Handler())
	mux.HandleFunc("POST /predict", s.handlePredict)
	if s.online != nil {
		mux.HandleFunc("POST /observe", s.handleObserve)
		mux.HandleFunc("GET /models/{name}/drift", s.handleDrift)
	}
	if s.rollout != nil {
		mux.HandleFunc("GET /models/{name}/rollout", s.handleRolloutGet)
		mux.HandleFunc("POST /models/{name}/rollout", s.handleRolloutPost)
	}
	return mux
}

// load returns the model for (name, version). version <= 0 means the
// latest published version, served through the lock-free hot-swap
// pointer; pinned versions go through the bounded cache. ctx carries
// the request trace so cold loads record artifact_load/hot_swap spans.
func (s *Server) load(ctx context.Context, name string, version int) (*registry.Model, error) {
	if version <= 0 {
		return s.loadLatest(ctx, name)
	}
	return s.loadPinned(ctx, name, version)
}

// loadLatest resolves name's newest published version (one cheap
// directory scan — no artifact read, no lock) and returns the model
// behind the name's atomic pointer, swapping a fresh load in when the
// pointer is stale. In-flight requests holding the previous *Model
// keep using it untouched: a swap is publication, not mutation.
func (s *Server) loadLatest(ctx context.Context, name string) (*registry.Model, error) {
	latest, err := s.reg.LatestVersion(name)
	if err != nil {
		return nil, err
	}
	// While a rollout is in flight (or a rolled-back version is still
	// the newest on disk), "latest" means the pinned incumbent; the
	// candidate only ever reaches clients through the canary split.
	latest = s.pinLatest(ctx, name, latest)
	p := s.latestPtr(name)
	if m := p.Load(); m != nil && m.Meta.Version >= latest {
		s.Metrics.ModelCacheHits.Add(1)
		return m, nil
	}
	return s.swapIn(ctx, name, latest)
}

func (s *Server) latestPtr(name string) *atomic.Pointer[registry.Model] {
	if v, ok := s.latest.Load(name); ok {
		return v.(*atomic.Pointer[registry.Model])
	}
	v, _ := s.latest.LoadOrStore(name, &atomic.Pointer[registry.Model]{})
	return v.(*atomic.Pointer[registry.Model])
}

// swapIn loads (name, version) from disk and publishes it to the
// name's latest pointer — unless a concurrent loader or publish got a
// newer version there first, in which case that one wins and is
// returned. Monotonicity means a client can never observe the served
// version move backwards. Loading is single-flighted per name: a cold
// or just-published model hit by a burst of requests is deserialized
// exactly once, with the rest of the burst waiting on the loader
// instead of each decoding its own copy.
func (s *Server) swapIn(ctx context.Context, name string, version int) (*registry.Model, error) {
	muAny, _ := s.loading.LoadOrStore(name, &sync.Mutex{})
	mu := muAny.(*sync.Mutex)
	mu.Lock()
	defer mu.Unlock()
	if cur := s.latestPtr(name).Load(); cur != nil && cur.Meta.Version >= version {
		// The loader we waited on already brought this version (or a
		// newer one) in.
		s.Metrics.ModelCacheHits.Add(1)
		return cur, nil
	}
	sp := telemetry.StartSpan(ctx, "hot_swap")
	defer sp.End()
	s.Metrics.ModelCacheMisses.Add(1)
	m, err := s.reg.LoadCtx(ctx, name, version)
	if err != nil {
		return nil, err
	}
	m.Workers = s.Workers
	if err := s.applyLayout(m); err != nil {
		return nil, err
	}
	sp.Detail(m.Meta.Name + "@v" + strconv.Itoa(m.Meta.Version))
	p := s.latestPtr(name)
	for {
		cur := p.Load()
		if cur != nil && cur.Meta.Version >= m.Meta.Version {
			return cur, nil
		}
		if p.CompareAndSwap(cur, m) {
			if cur != nil {
				s.Metrics.ModelSwaps.Add(1)
				if s.Log != nil {
					s.Log.Info("hot swap",
						"model", m.Meta.Name,
						"version", m.Meta.Version,
						"replaced", cur.Meta.Version)
				}
			}
			return m, nil
		}
	}
}

// applyLayout relayouts a freshly loaded model per the server's Layout
// config, before the model is published to any request goroutine (both
// load paths call it while the model is still private to the loader).
func (s *Server) applyLayout(m *registry.Model) error {
	if s.Layout == ml.LayoutDefault {
		return nil // decode already applied the process default
	}
	if err := m.ApplyLayout(s.Layout); err != nil {
		return fmt.Errorf("serve: applying layout %v to %s@%d: %w", s.Layout, m.Meta.Name, m.Meta.Version, err)
	}
	return nil
}

// Reload force-resolves name's latest registry version into the hot
// pointer: the publish notification path of the online plane, also
// usable by embedders after an out-of-band registry write.
func (s *Server) Reload(name string) (*registry.Model, error) {
	latest, err := s.reg.LatestVersion(name)
	if err != nil {
		return nil, err
	}
	// A freshly retrained publish lands here first (online.OnPublish):
	// the pin keeps it out of the hot pointer and starts its rollout
	// instead of swapping it straight in.
	latest = s.pinLatest(context.Background(), name, latest)
	return s.swapIn(context.Background(), name, latest)
}

// loadPinned returns the cached model for an explicit (name, version),
// loading it on first use. A pin of the version the hot-swap pointer
// already serves as "latest" reuses that instance instead of holding a
// second deserialized copy of the same ensemble.
func (s *Server) loadPinned(ctx context.Context, name string, version int) (*registry.Model, error) {
	if v, ok := s.latest.Load(name); ok {
		if m := v.(*atomic.Pointer[registry.Model]).Load(); m != nil && m.Meta.Version == version {
			s.Metrics.ModelCacheHits.Add(1)
			return m, nil
		}
	}
	key := fmt.Sprintf("%s@%d", name, version)
	s.mu.RLock()
	m := s.cache[key]
	s.mu.RUnlock()
	if m != nil {
		s.Metrics.ModelCacheHits.Add(1)
		return m, nil
	}
	s.Metrics.ModelCacheMisses.Add(1)
	m, err := s.reg.LoadCtx(ctx, name, version)
	if err != nil {
		return nil, err
	}
	m.Workers = s.Workers
	if err := s.applyLayout(m); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if cached, ok := s.cache[key]; ok {
		m = cached // another request won the load race; keep one instance
	} else {
		s.cache[key] = m
		s.evictOldLocked(name)
	}
	s.mu.Unlock()
	return m, nil
}

// keepVersionsPerName bounds the pinned cache per model name: clients
// pinning historic versions would otherwise keep every superseded
// deserialized ensemble resident forever. Older pins are served
// correctly but reload on each cache miss.
const keepVersionsPerName = 2

// evictOldLocked drops all but the newest keepVersionsPerName cached
// versions of name. Caller holds s.mu.
func (s *Server) evictOldLocked(name string) {
	var versions []int
	prefix := name + "@"
	for key, m := range s.cache {
		if strings.HasPrefix(key, prefix) {
			versions = append(versions, m.Meta.Version)
		}
	}
	if len(versions) <= keepVersionsPerName {
		return
	}
	sort.Ints(versions)
	for _, v := range versions[:len(versions)-keepVersionsPerName] {
		delete(s.cache, fmt.Sprintf("%s@%d", name, v))
		s.Metrics.ModelCacheEvictions.Add(1)
	}
}

type errorResponse struct {
	Error string `json:"error"`
}

// maxRequestBytes bounds a /predict request body (64 MiB ≈ a 400k-row
// batch of 20 features): without a cap, one oversized POST would be
// fully decoded into memory before any validation runs.
const maxRequestBytes = 64 << 20

// writeError maps the repository's typed sentinels to HTTP status
// codes and emits a JSON error body.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var tooLarge *http.MaxBytesError
	switch {
	case errors.As(err, &tooLarge):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, lamerr.ErrBadRequest), errors.Is(err, lamerr.ErrDimension):
		status = http.StatusBadRequest
	case errors.Is(err, lamerr.ErrUnknownModel):
		status = http.StatusNotFound
	case errors.Is(err, lamerr.ErrCancelled):
		// The client is gone or gave up; 499 in nginx convention. The
		// response is moot but keeps logs truthful.
		status = 499
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// predictError classifies a prediction-time failure: cancellation and
// server-state faults (unfitted model) keep their classes, everything
// else on a well-formed request is input the model rejected (e.g. the
// analytical model refusing non-positive grid dimensions) and is the
// client's fault.
func predictError(err error) error {
	if errors.Is(err, lamerr.ErrCancelled) || errors.Is(err, lamerr.ErrNotFitted) {
		return err
	}
	if errors.Is(err, lamerr.ErrBadRequest) || errors.Is(err, lamerr.ErrDimension) {
		return err
	}
	return fmt.Errorf("serve: %w: %w", lamerr.ErrBadRequest, err)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

type healthzResponse struct {
	Status string `json:"status"`
	Models int    `json:"models"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness must stay cheap enough for tight probe loops: one
	// directory scan, no meta.json reads (unlike /models).
	names, err := s.reg.Names()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, healthzResponse{Status: "ok", Models: len(names)})
}

// Warm force-loads every WarmNames model into its hot-swap pointer,
// returning the first load error. Call after construction (typically
// concurrently with serving — /readyz reports warming until every
// named model is resident, which is the point: a fleet gateway must
// not route here while cold loads are still paying artifact decodes).
func (s *Server) Warm() error {
	for _, name := range s.WarmNames {
		if _, err := s.Reload(name); err != nil {
			return fmt.Errorf("warming %s: %w", name, err)
		}
	}
	return nil
}

type readyzResponse struct {
	Status  string   `json:"status"`
	Models  int      `json:"models"`
	Warming []string `json:"warming,omitempty"`
}

// handleReadyz is readiness, distinct from /healthz liveness: ready
// means the registry is reachable AND every WarmNames model is
// resident in memory. A replica that is up but still paying cold-start
// decodes answers 503 here, so a fleet gateway keeps traffic off it
// until it can serve at full speed.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	names, err := s.reg.Names()
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, readyzResponse{Status: "registry unreachable"})
		return
	}
	var warming []string
	for _, name := range s.WarmNames {
		if m := s.latestPtr(name).Load(); m == nil {
			warming = append(warming, name)
		}
	}
	if len(warming) > 0 {
		writeJSON(w, http.StatusServiceUnavailable, readyzResponse{
			Status: "warming", Models: len(names), Warming: warming,
		})
		return
	}
	writeJSON(w, http.StatusOK, readyzResponse{Status: "ready", Models: len(names)})
}

type modelsResponse struct {
	Models []registry.Meta `json:"models"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	metas, err := s.reg.List()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, modelsResponse{Models: metas})
}

// predictRequest carries one single-vector or batched prediction
// request. Exactly one of X and Batch must be set.
type predictRequest struct {
	// Model is the registry name. Required.
	Model string `json:"model"`
	// Version selects a stored version; 0 or absent means latest.
	Version int `json:"version,omitempty"`
	// X is a single feature vector.
	X []float64 `json:"x,omitempty"`
	// Batch is a list of feature vectors.
	Batch [][]float64 `json:"batch,omitempty"`
}

// predictResponse mirrors the request shape: Y for single, YBatch for
// batched. Values are encoded by encoding/json's shortest-round-trip
// float formatting, so decoding yields the library's float64 bits
// exactly.
type predictResponse struct {
	Model   string    `json:"model"`
	Version int       `json:"version"`
	Y       *float64  `json:"y,omitempty"`
	YBatch  []float64 `json:"y_batch,omitempty"`
}

// Batch output buffers come from the shared ml scratch pool: each
// /predict batch request checks one out, scores into it via the
// registry model's allocation-free PredictBatchInto, encodes the
// response, and returns it — so the serve batch hot path performs zero
// per-row allocations in steady state (the JSON decode of the request
// body is the only per-row cost left).

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.Metrics.PredictRequests.Add(1)
	defer func() { s.Metrics.PredictLatency.Observe(time.Since(start)) }()
	// Adopt the gateway's trace ID (or mint one at this edge) and echo
	// it back so a client can chase the request in /trace/recent.
	tr := s.Tracer.StartFromHeader(r.Header, "predict")
	ctx := r.Context()
	if tr != nil {
		w.Header().Set(telemetry.TraceHeader, tr.ID().String())
		ctx = telemetry.WithTrace(ctx, tr)
		defer s.Tracer.Finish(tr)
	}
	fail := func(err error) {
		s.Metrics.PredictErrors.Add(1)
		writeError(w, err)
	}
	if s.admit != nil {
		asp := tr.StartSpan("admission")
		release, err := s.admit.admit(ctx)
		asp.End()
		if err != nil {
			if errors.Is(err, errOverloaded) {
				// Shed, not failed: the client is told to back off for
				// roughly one coalescing window plus queue turnover.
				w.Header().Set("Retry-After", "1")
				writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
				return
			}
			fail(err)
			return
		}
		defer release()
	}
	if s.InjectLatency > 0 {
		select {
		case <-time.After(s.InjectLatency):
		case <-ctx.Done():
			fail(fmt.Errorf("serve: %w: %w", lamerr.ErrCancelled, ctx.Err()))
			return
		}
	}
	var req predictRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		fail(fmt.Errorf("serve: %w: %w", lamerr.ErrBadRequest, err))
		return
	}
	if req.Model == "" {
		fail(fmt.Errorf("serve: %w: missing \"model\"", lamerr.ErrBadRequest))
		return
	}
	single := req.X != nil
	if single == (len(req.Batch) > 0) {
		fail(fmt.Errorf("serve: %w: exactly one of \"x\" and \"batch\" must be set", lamerr.ErrBadRequest))
		return
	}
	m, err := s.load(ctx, req.Model, req.Version)
	if err != nil {
		fail(err)
		return
	}
	// rv non-nil past this point means "shadow-score after serving":
	// canary-assigned requests are re-targeted at the candidate (and
	// have nothing to shadow), the canary remainder is served by the
	// incumbent without shadowing.
	rv := s.rolloutView(req.Model, req.Version)
	if rv != nil {
		routed := false
		if single {
			routed = rv.RouteRow(req.X)
		} else {
			routed = rv.RouteBatch(req.Batch)
		}
		switch {
		case routed:
			m = rv.Candidate
			rv = nil
		case rv.Phase != rollout.PhaseShadow:
			rv = nil
		}
	}
	tr.SetModel(m.Meta.Name, m.Meta.Version)
	mt := s.modelTeleFor(m)
	resp := predictResponse{Model: m.Meta.Name, Version: m.Meta.Version}
	if single {
		var y float64
		psp := tr.StartSpan("predict")
		if s.co != nil {
			s.Metrics.CoalescedRequests.Add(1)
			y, err = s.co.predict(ctx, m, req.X)
		} else {
			y, err = m.Predict(ctx, req.X)
		}
		psp.End()
		if err != nil {
			mt.err.Inc()
			fail(predictError(err))
			return
		}
		s.Metrics.PredictRows.Add(1)
		mt.ok.Inc()
		mt.rows.Add(1)
		resp.Y = &y
		writeJSON(w, http.StatusOK, resp)
		if rv != nil {
			s.shadowScoreRow(ctx, rv, req.X, y)
		}
		return
	}
	s.Metrics.PredictBatchRequests.Add(1)
	buf := ml.GetScratch(len(req.Batch))
	defer ml.PutScratch(buf)
	psp := tr.StartSpan("predict")
	if tr != nil {
		psp.Detail("rows=" + strconv.Itoa(len(req.Batch)))
	}
	err = m.PredictBatchInto(ctx, req.Batch, *buf)
	psp.End()
	if err != nil {
		mt.err.Inc()
		fail(predictError(err))
		return
	}
	s.Metrics.PredictRows.Add(uint64(len(req.Batch)))
	mt.ok.Inc()
	mt.rows.Add(uint64(len(req.Batch)))
	resp.YBatch = *buf
	writeJSON(w, http.StatusOK, resp)
	if rv != nil {
		s.shadowScoreBatch(ctx, rv, req.Batch, *buf)
	}
}

// observeRequest carries ground-truth observations: each feature
// vector paired with the runtime actually measured for it. Exactly one
// of (X, Y) and (Batch, YBatch) must be set.
type observeRequest struct {
	// Model is the registry name. Required. Observations are always
	// scored against the latest served version.
	Model string `json:"model"`
	// X, Y is a single observation.
	X []float64 `json:"x,omitempty"`
	Y *float64  `json:"y,omitempty"`
	// Batch, YBatch is a batched observation stream.
	Batch  [][]float64 `json:"batch,omitempty"`
	YBatch []float64   `json:"y_batch,omitempty"`
}

// observeResponse reports what was ingested and the model's resulting
// adaptation state — enough for a replay client to watch the drift
// detector trip and the retrained version publish without polling a
// second endpoint.
type observeResponse struct {
	Model    string        `json:"model"`
	Version  int           `json:"version"`
	Ingested int           `json:"ingested"`
	Drift    online.Status `json:"drift"`
	// Rollout is present while a rollout is active for the model: the
	// state after this batch's APEs fed the current gate, so a replay
	// client can watch the candidate walk the stages inline.
	Rollout *rollout.Status `json:"rollout,omitempty"`
}

// handleObserve scores each observed feature vector with the current
// latest model (the "served prediction" half of the window's rolling
// accuracy) and feeds the (x, predicted, observed) triples to the
// online plane. Drift detection and any resulting background retrain
// happen inside the plane; the response carries the updated status.
func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	s.Metrics.ObserveRequests.Add(1)
	tr := s.Tracer.StartFromHeader(r.Header, "observe")
	ctx := r.Context()
	if tr != nil {
		w.Header().Set(telemetry.TraceHeader, tr.ID().String())
		ctx = telemetry.WithTrace(ctx, tr)
		defer s.Tracer.Finish(tr)
	}
	fail := func(err error) {
		s.Metrics.ObserveErrors.Add(1)
		writeError(w, err)
	}
	var req observeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		fail(fmt.Errorf("serve: %w: %w", lamerr.ErrBadRequest, err))
		return
	}
	if req.Model == "" {
		fail(fmt.Errorf("serve: %w: missing \"model\"", lamerr.ErrBadRequest))
		return
	}
	single := req.X != nil || req.Y != nil
	batch := len(req.Batch) > 0 || len(req.YBatch) > 0
	if single == batch {
		fail(fmt.Errorf("serve: %w: exactly one of (\"x\",\"y\") and (\"batch\",\"y_batch\") must be set", lamerr.ErrBadRequest))
		return
	}
	var X [][]float64
	var obs []float64
	if single {
		if req.X == nil || req.Y == nil {
			fail(fmt.Errorf("serve: %w: a single observation needs both \"x\" and \"y\"", lamerr.ErrBadRequest))
			return
		}
		X, obs = [][]float64{req.X}, []float64{*req.Y}
	} else {
		if len(req.Batch) != len(req.YBatch) {
			fail(fmt.Errorf("serve: %w: %d feature rows but %d observed runtimes",
				lamerr.ErrBadRequest, len(req.Batch), len(req.YBatch)))
			return
		}
		X, obs = req.Batch, req.YBatch
	}
	for i, y := range obs {
		if math.IsNaN(y) || math.IsInf(y, 0) {
			fail(fmt.Errorf("serve: %w: observation %d is not finite", lamerr.ErrBadRequest, i))
			return
		}
	}
	m, err := s.load(ctx, req.Model, 0)
	if err != nil {
		fail(err)
		return
	}
	tr.SetModel(m.Meta.Name, m.Meta.Version)
	var status online.Status
	var rst *rollout.Status
	if rv := s.rolloutView(req.Model, 0); rv != nil {
		status, rst, err = s.rolloutObserve(ctx, m, rv, X, obs)
		if err != nil {
			fail(err)
			return
		}
	} else {
		buf := ml.GetScratch(len(X))
		defer ml.PutScratch(buf)
		psp := tr.StartSpan("predict")
		err = m.PredictBatchInto(ctx, X, *buf)
		psp.End()
		if err != nil {
			fail(predictError(err))
			return
		}
		isp := tr.StartSpan("observe_ingest")
		status, err = s.online.Observe(m, X, *buf, obs)
		isp.End()
		if err != nil {
			fail(err)
			return
		}
	}
	s.Metrics.ObserveRows.Add(uint64(len(X)))
	writeJSON(w, http.StatusOK, observeResponse{
		Model:    m.Meta.Name,
		Version:  m.Meta.Version,
		Ingested: len(X),
		Drift:    status,
		Rollout:  rst,
	})
}

// handleDrift reports the adaptation state of a model's latest served
// version.
func (s *Server) handleDrift(w http.ResponseWriter, r *http.Request) {
	m, err := s.load(r.Context(), r.PathValue("name"), 0)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.online.Status(m))
}

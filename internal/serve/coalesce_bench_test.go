package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"lam/internal/experiments"
	"lam/internal/machine"
	"lam/internal/ml"
	"lam/internal/registry"
)

// benchRegistry publishes a production-sized extra-trees ensemble
// (enough nodes that the compiled plane's tree-major batch traversal
// is active and single-row scoring is a real fraction of the request)
// into a fresh registry. Shared by both halves of the pair so they
// serve the identical model.
func benchRegistry(b *testing.B) (*registry.Registry, [][]float64) {
	b.Helper()
	m := machine.BlueWatersXE6()
	ds, err := experiments.DatasetByName("stencil-grid", m, 42)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	train, test, err := ds.SampleFraction(0.35, rng)
	if err != nil {
		b.Fatal(err)
	}
	et := &ml.Pipeline{Model: ml.NewExtraTrees(400, 7)}
	if err := et.Fit(train.X, train.Y); err != nil {
		b.Fatal(err)
	}
	reg, err := registry.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := reg.SaveRegressor(et, registry.Meta{Name: "grid-et"}); err != nil {
		b.Fatal(err)
	}
	return reg, test.X[:256]
}

// benchmarkServeSingles drives the full /predict round trip for
// single-row requests from many concurrent clients — the workload the
// coalescer exists for. With coalesce=false every request walks the
// ensemble alone; with coalesce=true concurrent requests share
// tree-major compiled batches. Run the pair:
//
//	go test ./internal/serve -bench 'ServeCoalesced|ServePerRequest' -cpu 8
//
// The acceptance claim (see ISSUE/EXPERIMENTS) is that under >= 32
// concurrent single-row clients the coalesced server sustains
// measurably higher throughput.
func benchmarkServeSingles(b *testing.B, coalesce bool) {
	reg, X := benchRegistry(b)
	srv := New(reg)
	srv.Workers = 1
	if coalesce {
		srv.Coalesce = CoalesceConfig{MaxBatch: 16, MaxDelay: time.Millisecond}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = 256

	bodies := make([][]byte, len(X))
	for i, x := range X {
		body, err := json.Marshal(map[string]any{"model": "grid-et", "x": x})
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = body
	}

	// Warm up outside the timed region: the first request pays the
	// one-time artifact deserialization into the hot-swap pointer.
	resp, err := client.Post(ts.URL+"/predict", "application/json", bytes.NewReader(bodies[0]))
	if err != nil {
		b.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("warm-up status %d", resp.StatusCode)
	}

	// >= 32 concurrent clients regardless of GOMAXPROCS.
	b.SetParallelism(32/runtime.GOMAXPROCS(0) + 1)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			resp, err := client.Post(ts.URL+"/predict", "application/json", bytes.NewReader(bodies[i%len(bodies)]))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
			i++
		}
	})
}

// BenchmarkServeCoalesced / BenchmarkServePerRequest are the
// throughput-plane before/after pair: identical concurrent single-row
// load, with and without micro-batch coalescing.
func BenchmarkServeCoalesced(b *testing.B)  { benchmarkServeSingles(b, true) }
func BenchmarkServePerRequest(b *testing.B) { benchmarkServeSingles(b, false) }

package serve

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"lam/internal/dataset"
	"lam/internal/experiments"
	"lam/internal/hybrid"
	"lam/internal/machine"
	"lam/internal/ml"
	"lam/internal/online"
	"lam/internal/registry"
	"lam/internal/rollout"
)

// newRolloutFixture trains a good extra-trees v1 of "grid-et" and
// returns a miscalibrated challenger trained on labels scaled 3x (a
// model that looks great against equally miscalibrated observations
// and terrible against the truth). The challenger is returned
// unpublished so each test controls when the rollout begins.
func newRolloutFixture(t *testing.T) (*registry.Registry, *ml.Pipeline, *dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	m := machine.BlueWatersXE6()
	ds, err := experiments.DatasetByName("stencil-grid", m, 42)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	train, test, err := ds.SampleFraction(0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	good := &ml.Pipeline{Model: ml.NewExtraTrees(50, 7)}
	if err := good.Fit(train.X, train.Y); err != nil {
		t.Fatal(err)
	}
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.SaveRegressor(good, registry.Meta{Name: "grid-et"}); err != nil {
		t.Fatal(err)
	}
	scaled := make([]float64, len(train.Y))
	for i, y := range train.Y {
		scaled[i] = 3 * y
	}
	bad := &ml.Pipeline{Model: ml.NewExtraTrees(50, 9)}
	if err := bad.Fit(train.X, scaled); err != nil {
		t.Fatal(err)
	}
	return reg, bad, train, test
}

// newRolloutServer wires a serve stack (online plane with retraining
// off, rollout controller with the given policy) over reg.
func newRolloutServer(t *testing.T, reg *registry.Registry, cfg rollout.Config) (*httptest.Server, *Server, *rollout.Controller) {
	t.Helper()
	srv := New(reg)
	srv.Workers = 1
	plane := online.New(reg, online.Config{DisableRetrain: true, Workers: 1})
	t.Cleanup(plane.Close)
	srv.AttachOnline(plane)
	ctrl := rollout.New(reg, cfg)
	srv.AttachRollout(ctrl)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv, ctrl
}

// observeOut mirrors the /observe response envelope.
type observeOut struct {
	Version  int             `json:"version"`
	Ingested int             `json:"ingested"`
	Drift    online.Status   `json:"drift"`
	Rollout  *rollout.Status `json:"rollout"`
}

func postObserveBatch(t *testing.T, base string, model string, X [][]float64, Y []float64) observeOut {
	t.Helper()
	resp, body := postJSON(t, base+"/observe", map[string]any{
		"model": model, "batch": X, "y_batch": Y,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/observe: status %d (%s)", resp.StatusCode, body)
	}
	var out observeOut
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	return out
}

func getRolloutStatus(t *testing.T, base, model string) rollout.Status {
	t.Helper()
	resp, err := http.Get(base + "/models/" + model + "/rollout")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET rollout: status %d", resp.StatusCode)
	}
	var st rollout.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func postRolloutAction(t *testing.T, base, model, action string) *http.Response {
	t.Helper()
	resp, _ := postJSON(t, base+"/models/"+model+"/rollout", map[string]any{"action": action})
	return resp
}

// predictVersion runs one single-row /predict and returns the serving
// version from the response envelope.
func predictVersion(t *testing.T, base string, model string, x []float64) int {
	t.Helper()
	resp, body := postPredict(t, base, map[string]any{"model": model, "x": x})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/predict: status %d (%s)", resp.StatusCode, body)
	}
	var out predictOut
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out.Version
}

// TestCanaryPromotesBetterModel is the progressive-delivery acceptance
// run, end to end over HTTP: the hardware-transfer drift stream trips
// the detector and publishes a retrained v2; instead of hot-swapping,
// v2 shadow-scores, walks every canary stage, and is promoted on
// merit; and the post-promotion windowed MAPE is well below the
// pre-swap window (same bar as the direct hot-swap acceptance test).
func TestCanaryPromotesBetterModel(t *testing.T) {
	sc, err := experiments.NewDriftScenario("stencil-blocking", "bluewaters", "xeon", 0.02, 42)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := hybrid.Train(sc.Train, sc.AM, hybrid.Config{Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.SaveHybrid(hy, registry.Meta{
		Name: "blk", Workload: sc.Workload, Machine: sc.SourceName,
		TrainSize: sc.Train.Len(),
	}); err != nil {
		t.Fatal(err)
	}

	srv := New(reg)
	srv.Workers = 1
	plane := online.New(reg, online.Config{
		WindowSize: 256,
		Detector:   online.DetectorConfig{MinSamples: 192},
		BaseData: func(meta registry.Meta) (*dataset.Dataset, error) {
			return sc.Train, nil
		},
		Seed:    7,
		Workers: 1,
	})
	defer plane.Close()
	srv.AttachOnline(plane)
	stages := []float64{0.25, 0.5, 1.0}
	ctrl := rollout.New(reg, rollout.Config{
		Stages:        stages,
		ShadowSamples: 48,
		StageSamples:  24,
		PromoteRatio:  0.95,
		WindowSize:    256,
	})
	srv.AttachRollout(ctrl)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const batch = 32
	span := sc.Stream.Len() - batch
	stagesSeen := map[int]bool{}
	sawShadow := false
	var preSwap, postSwap float64
	promoted := false
	deadline := time.Now().Add(3 * time.Minute)
	for sent := 0; ; sent += batch {
		if time.Now().After(deadline) {
			t.Fatalf("deadline exceeded: shadow=%v stages=%v promoted=%v", sawShadow, stagesSeen, promoted)
		}
		// The stream wraps: the stage walk plus the post-promotion
		// window needs more target-machine rows than one pass holds.
		lo := sent % span
		v := postObserveBatch(t, ts.URL, "blk", sc.Stream.X[lo:lo+batch], sc.Stream.Y[lo:lo+batch])
		// The prediction path must never fail, in any phase.
		if resp, body := postPredict(t, ts.URL, map[string]any{"model": "blk", "x": sc.Stream.X[lo]}); resp.StatusCode != http.StatusOK {
			t.Fatalf("/predict during rollout: status %d (%s)", resp.StatusCode, body)
		}
		if v.Rollout != nil && v.Rollout.Phase != "idle" {
			// While the rollout runs, "latest" stays pinned to the
			// incumbent — the candidate must never swap in early.
			if v.Version != 1 {
				t.Fatalf("observe served v%d while rollout active (pin broken)", v.Version)
			}
			if preSwap == 0 {
				preSwap = v.Drift.PreSwapMAPE
				if preSwap <= 0 {
					t.Fatalf("rollout began without a recorded pre-swap MAPE: %+v", v.Drift)
				}
			}
			switch v.Rollout.Phase {
			case "shadow":
				sawShadow = true
			case "canary":
				stagesSeen[v.Rollout.Stage] = true
			}
		}
		if !promoted && ctrl.Promotions() >= 1 {
			promoted = true
		}
		if promoted && v.Version >= 2 && v.Drift.Window.Count >= 128 {
			postSwap = v.Drift.Window.MAPE
			break
		}
		if v.Drift.Retraining {
			time.Sleep(10 * time.Millisecond)
		}
	}

	if !sawShadow {
		t.Error("candidate never reported the shadow phase")
	}
	for i := range stages {
		if !stagesSeen[i] {
			t.Errorf("candidate skipped canary stage %d (%.0f%%); seen %v", i, 100*stages[i], stagesSeen)
		}
	}
	if postSwap >= 0.6*preSwap {
		t.Fatalf("promotion did not pay off: pre-swap windowed MAPE %.2f%%, post-promotion %.2f%%", preSwap, postSwap)
	}
	t.Logf("windowed MAPE pre-swap %.2f%% -> post-promotion %.2f%%", preSwap, postSwap)

	// The rollout endpoint reports the completed delivery.
	st := getRolloutStatus(t, ts.URL, "blk")
	if st.Phase != "idle" || st.Promotions != 1 || st.Rollbacks != 0 {
		t.Fatalf("post-promotion rollout status: %+v", st)
	}
	// And the rollout telemetry made it to /metrics.
	exp, err := scrapeStrict(t, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if fam := exp.Family("lam_rollout_promotions_total"); fam == nil || len(fam.Samples) == 0 || fam.Samples[0].Value < 1 {
		t.Errorf("lam_rollout_promotions_total missing or zero: %+v", fam)
	}
	if fam := exp.Family("lam_rollout_state"); fam == nil || len(fam.Samples) == 0 || fam.Samples[0].Value != 0 {
		t.Errorf("lam_rollout_state should be 0 (idle) after promotion: %+v", fam)
	}
	if fam := exp.Family("lam_rollout_shadow_divergence"); fam == nil || fam.Type != "histogram" {
		t.Errorf("shadow divergence histogram missing: %+v", fam)
	}
}

// TestCanaryRollsBackWorseModel is the chaos half of the acceptance
// suite: a challenger that flatters miscalibrated observations clears
// the shadow gate, starts serving its canary share — never more than
// the stage fraction — and is rolled back and quarantined the moment
// honest labels arrive, with the incumbent taking back every request.
func TestCanaryRollsBackWorseModel(t *testing.T) {
	reg, bad, train, test := newRolloutFixture(t)
	ts, _, ctrl := newRolloutServer(t, reg, rollout.Config{
		Stages:        []float64{0.5, 1.0},
		ShadowSamples: 32,
		StageSamples:  16,
		PromoteRatio:  0.95,
		WindowSize:    64,
		Holddown:      time.Hour,
	})

	// Bootstrap v1 as the incumbent, then publish the challenger.
	if v := predictVersion(t, ts.URL, "grid-et", test.X[0]); v != 1 {
		t.Fatalf("bootstrap serves v%d, want 1", v)
	}
	if _, err := reg.SaveRegressor(bad, registry.Meta{Name: "grid-et"}); err != nil {
		t.Fatal(err)
	}

	// Phase 1: replay observations with the same 3x miscalibration the
	// challenger was trained on. It looks better than the incumbent, so
	// it must clear shadow and enter canary stage 0 — while every
	// served prediction still comes from v1.
	const batch = 16
	noisy := make([]float64, batch)
	sawShadow := false
	var st rollout.Status
	for i := 0; i < 20; i++ {
		lo := (i * batch) % (len(train.X) - batch)
		for j := 0; j < batch; j++ {
			noisy[j] = 3 * train.Y[lo+j]
		}
		out := postObserveBatch(t, ts.URL, "grid-et", train.X[lo:lo+batch], noisy)
		if out.Version != 1 {
			t.Fatalf("observe served v%d during shadow, want 1", out.Version)
		}
		if out.Rollout == nil {
			t.Fatalf("no rollout status in observe response: %+v", out)
		}
		if out.Rollout.Phase == "shadow" {
			sawShadow = true
		}
		if out.Rollout.Phase == "canary" {
			st = *out.Rollout
			break
		}
	}
	if !sawShadow || st.Phase != "canary" || st.Stage != 0 || st.Candidate != 2 {
		t.Fatalf("challenger did not reach canary stage 0 (shadow seen: %v): %+v", sawShadow, st)
	}

	// Phase 2: probe the canary split. The challenger serves its hashed
	// share — close to the stage fraction and never meaningfully beyond
	// it.
	probes := test.X
	if len(probes) > 200 {
		probes = probes[:200]
	}
	servedByCand := 0
	for _, x := range probes {
		if predictVersion(t, ts.URL, "grid-et", x) == 2 {
			servedByCand++
		}
	}
	frac := float64(servedByCand) / float64(len(probes))
	if frac > st.Fraction+0.15 {
		t.Fatalf("canary served %.2f of probes, beyond stage fraction %.2f", frac, st.Fraction)
	}
	if servedByCand == 0 {
		t.Fatal("canary stage served no traffic at all")
	}

	// Phase 3: honest labels arrive. The challenger's canary share
	// scores terribly against them and the gate must roll it back
	// within the stage window.
	rolledBack := false
	for i := 0; i < 8 && !rolledBack; i++ {
		lo := (i * batch) % (len(train.X) - batch)
		out := postObserveBatch(t, ts.URL, "grid-et", train.X[lo:lo+batch], train.Y[lo:lo+batch])
		rolledBack = out.Rollout != nil && out.Rollout.Rollbacks >= 1 && out.Rollout.Phase == "idle"
	}
	if !rolledBack {
		t.Fatalf("no rollback within the stage window: %+v", getRolloutStatus(t, ts.URL, "grid-et"))
	}
	if ctrl.Rollbacks() != 1 || ctrl.Promotions() != 0 {
		t.Fatalf("lifetime counters: promotions=%d rollbacks=%d", ctrl.Promotions(), ctrl.Rollbacks())
	}

	// The incumbent takes back 100% of traffic even though the bad
	// artifact is still the newest version on disk.
	if latest, err := reg.LatestVersion("grid-et"); err != nil || latest != 2 {
		t.Fatalf("registry latest = %d (%v), want 2 still on disk", latest, err)
	}
	for _, x := range probes[:50] {
		if v := predictVersion(t, ts.URL, "grid-et", x); v != 1 {
			t.Fatalf("post-rollback predict served v%d, want 1", v)
		}
	}

	// The loser is quarantined: more honest observations must not
	// restart its rollout.
	st = getRolloutStatus(t, ts.URL, "grid-et")
	if len(st.Holddown) != 1 || st.Holddown[0].Version != 2 || st.Holddown[0].Reason == "" {
		t.Fatalf("holddown after rollback: %+v", st.Holddown)
	}
	out := postObserveBatch(t, ts.URL, "grid-et", train.X[:batch], train.Y[:batch])
	if out.Rollout != nil && out.Rollout.Phase != "idle" {
		t.Fatalf("quarantined version restarted a rollout: %+v", out.Rollout)
	}

	// Rollback telemetry.
	exp, err := scrapeStrict(t, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if fam := exp.Family("lam_rollout_rollbacks_total"); fam == nil || len(fam.Samples) == 0 || fam.Samples[0].Value < 1 {
		t.Errorf("lam_rollout_rollbacks_total missing or zero: %+v", fam)
	}
}

// TestRolloutStateSurvivesRestart: both an in-flight rollout (the pin
// and the shadow phase) and a post-rollback quarantine must come back
// after the serving process is rebuilt from the registry directory.
func TestRolloutStateSurvivesRestart(t *testing.T) {
	reg, bad, train, test := newRolloutFixture(t)
	cfg := rollout.Config{
		Stages:        []float64{0.5, 1.0},
		ShadowSamples: 32,
		StageSamples:  16,
		WindowSize:    64,
		Holddown:      time.Hour,
	}
	ts1, _, _ := newRolloutServer(t, reg, cfg)
	if v := predictVersion(t, ts1.URL, "grid-et", test.X[0]); v != 1 {
		t.Fatalf("bootstrap serves v%d, want 1", v)
	}
	if _, err := reg.SaveRegressor(bad, registry.Meta{Name: "grid-et"}); err != nil {
		t.Fatal(err)
	}
	// One under-threshold batch: the rollout begins and stays in shadow.
	noisy := make([]float64, 16)
	for j := range noisy {
		noisy[j] = 3 * train.Y[j]
	}
	out := postObserveBatch(t, ts1.URL, "grid-et", train.X[:16], noisy)
	if out.Rollout == nil || out.Rollout.Phase != "shadow" {
		t.Fatalf("rollout not in shadow on the first server: %+v", out.Rollout)
	}
	ts1.Close()

	// "Restart": a fresh registry handle over the same directory, a
	// fresh server, a fresh controller. The rollout must resume — same
	// phase, same pin — not blindly serve the newest artifact.
	reg2, err := registry.Open(reg.Root())
	if err != nil {
		t.Fatal(err)
	}
	ts2, _, _ := newRolloutServer(t, reg2, cfg)
	if v := predictVersion(t, ts2.URL, "grid-et", test.X[0]); v != 1 {
		t.Fatalf("restarted server serves v%d, want pinned v1", v)
	}
	st := getRolloutStatus(t, ts2.URL, "grid-et")
	if st.Phase != "shadow" || st.Candidate != 2 || st.Incumbent != 1 {
		t.Fatalf("resumed rollout status: %+v", st)
	}

	// Roll it back by operator action, restart again: the quarantine
	// and the pin survive too.
	if resp := postRolloutAction(t, ts2.URL, "grid-et", "rollback"); resp.StatusCode != http.StatusOK {
		t.Fatalf("rollback action: status %d", resp.StatusCode)
	}
	ts2.Close()
	reg3, err := registry.Open(reg.Root())
	if err != nil {
		t.Fatal(err)
	}
	ts3, _, _ := newRolloutServer(t, reg3, cfg)
	if v := predictVersion(t, ts3.URL, "grid-et", test.X[0]); v != 1 {
		t.Fatalf("post-rollback restart serves v%d, want pinned v1", v)
	}
	st = getRolloutStatus(t, ts3.URL, "grid-et")
	if st.Phase != "idle" || len(st.Holddown) != 1 || st.Holddown[0].Version != 2 {
		t.Fatalf("quarantine did not survive restart: %+v", st)
	}
}

// TestRolloutEndpointActions covers the operator surface: pause,
// resume, rollback, conflict on an idle model, bad actions, unknown
// models.
func TestRolloutEndpointActions(t *testing.T) {
	reg, bad, _, test := newRolloutFixture(t)
	ts, _, _ := newRolloutServer(t, reg, rollout.Config{
		Stages: []float64{0.5, 1.0}, ShadowSamples: 32, StageSamples: 16, WindowSize: 64,
	})
	if v := predictVersion(t, ts.URL, "grid-et", test.X[0]); v != 1 {
		t.Fatalf("bootstrap serves v%d", v)
	}

	// No rollout yet: actions conflict, status reports idle.
	if resp := postRolloutAction(t, ts.URL, "grid-et", "pause"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("pause with no rollout: status %d, want 409", resp.StatusCode)
	}
	if st := getRolloutStatus(t, ts.URL, "grid-et"); st.Phase != "idle" {
		t.Fatalf("idle status: %+v", st)
	}
	resp, err := http.Get(ts.URL + "/models/nope/rollout")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model rollout: status %d, want 404", resp.StatusCode)
	}

	if _, err := reg.SaveRegressor(bad, registry.Meta{Name: "grid-et"}); err != nil {
		t.Fatal(err)
	}
	// A predict is enough to notice the new version and begin shadow.
	predictVersion(t, ts.URL, "grid-et", test.X[0])
	if st := getRolloutStatus(t, ts.URL, "grid-et"); st.Phase != "shadow" {
		t.Fatalf("rollout not begun by version resolution: %+v", st)
	}

	if resp := postRolloutAction(t, ts.URL, "grid-et", "pause"); resp.StatusCode != http.StatusOK {
		t.Fatalf("pause: status %d", resp.StatusCode)
	}
	if st := getRolloutStatus(t, ts.URL, "grid-et"); !st.Paused {
		t.Fatalf("pause did not stick: %+v", st)
	}
	if resp := postRolloutAction(t, ts.URL, "grid-et", "resume"); resp.StatusCode != http.StatusOK {
		t.Fatalf("resume: status %d", resp.StatusCode)
	}
	if st := getRolloutStatus(t, ts.URL, "grid-et"); st.Paused {
		t.Fatalf("resume did not stick: %+v", st)
	}
	if resp := postRolloutAction(t, ts.URL, "grid-et", "self-destruct"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown action: status %d, want 400", resp.StatusCode)
	}
	if resp := postRolloutAction(t, ts.URL, "grid-et", "rollback"); resp.StatusCode != http.StatusOK {
		t.Fatalf("rollback: status %d", resp.StatusCode)
	}
	st := getRolloutStatus(t, ts.URL, "grid-et")
	if st.Phase != "idle" || len(st.Holddown) != 1 {
		t.Fatalf("after forced rollback: %+v", st)
	}
	if resp := postRolloutAction(t, ts.URL, "grid-et", "rollback"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("double rollback: status %d, want 409", resp.StatusCode)
	}
}

// TestShadowPredictionsBitIdentical: what the shadow scorer records
// for the candidate equals scoring the same rows through an
// independently loaded copy of the candidate artifact, bit for bit.
func TestShadowPredictionsBitIdentical(t *testing.T) {
	reg, bad, _, test := newRolloutFixture(t)
	ts, _, ctrl := newRolloutServer(t, reg, rollout.Config{
		Stages: []float64{1.0}, ShadowSamples: 1 << 20, WindowSize: 64,
	})
	if v := predictVersion(t, ts.URL, "grid-et", test.X[0]); v != 1 {
		t.Fatalf("bootstrap serves v%d", v)
	}
	if _, err := reg.SaveRegressor(bad, registry.Meta{Name: "grid-et"}); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var gotX [][]float64
	var gotY []float64
	ctrl.ShadowSink = func(name string, version int, X [][]float64, preds []float64) {
		if name != "grid-et" || version != 2 {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		// The slices are pooled scratch: the sink must copy.
		for i := range X {
			row := make([]float64, len(X[i]))
			copy(row, X[i])
			gotX = append(gotX, row)
			gotY = append(gotY, preds[i])
		}
	}

	rows := test.X[:16]
	// A batch predict and a single-row predict, both shadow-scored.
	if resp, body := postPredict(t, ts.URL, map[string]any{"model": "grid-et", "batch": rows}); resp.StatusCode != http.StatusOK {
		t.Fatalf("batch predict: %d (%s)", resp.StatusCode, body)
	}
	if v := predictVersion(t, ts.URL, "grid-et", test.X[20]); v != 1 {
		t.Fatalf("shadow-phase predict served v%d, want 1", v)
	}
	// Shadow scoring runs in the handler after the response is written;
	// give it a beat.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(gotY)
		mu.Unlock()
		if n >= len(rows)+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shadow sink saw %d predictions, want %d", n, len(rows)+1)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Independent decode of the candidate artifact, same worker config.
	cand, err := reg.Load("grid-et", 2)
	if err != nil {
		t.Fatal(err)
	}
	cand.Workers = 1
	mu.Lock()
	defer mu.Unlock()
	want := make([]float64, len(gotX))
	if err := cand.PredictBatchInto(context.Background(), gotX, want); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(gotY[i]) {
			t.Fatalf("shadow prediction %d not bit-identical: shadow %x direct %x", i,
				math.Float64bits(gotY[i]), math.Float64bits(want[i]))
		}
	}
}

// TestServeZeroPerRowAllocationsWithShadow extends the serve hot-path
// allocation contract to progressive delivery: with a rollout in
// shadow phase — every served batch also scored by the candidate and
// fed to the divergence histogram — per-row allocations must stay
// zero (allocations do not grow with batch size).
func TestServeZeroPerRowAllocationsWithShadow(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	reg, bad, _, test := newRolloutFixture(t)
	ts, srv, _ := newRolloutServer(t, reg, rollout.Config{
		Stages: []float64{1.0}, ShadowSamples: 1 << 20, WindowSize: 64,
	})
	if v := predictVersion(t, ts.URL, "grid-et", test.X[0]); v != 1 {
		t.Fatalf("bootstrap serves v%d", v)
	}
	if _, err := reg.SaveRegressor(bad, registry.Meta{Name: "grid-et"}); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	m, err := srv.load(ctx, "grid-et", 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Meta.Version != 1 {
		t.Fatalf("pinned load resolved v%d, want 1", m.Meta.Version)
	}
	rv := srv.rolloutView("grid-et", 0)
	if rv == nil || rv.Phase != rollout.PhaseShadow {
		t.Fatalf("no shadow view active: %+v", rv)
	}

	servePath := func(rows [][]float64) float64 {
		// Warm the scratch pools at this size before measuring.
		out := ml.GetScratch(len(rows))
		if err := m.PredictBatchInto(ctx, rows, *out); err != nil {
			t.Fatal(err)
		}
		srv.shadowScoreBatch(ctx, rv, rows, *out)
		ml.PutScratch(out)
		return testing.AllocsPerRun(50, func() {
			out := ml.GetScratch(len(rows))
			if err := m.PredictBatchInto(ctx, rows, *out); err != nil {
				t.Fatal(err)
			}
			srv.shadowScoreBatch(ctx, rv, rows, *out)
			ml.PutScratch(out)
		})
	}
	small := servePath(test.X[:8])
	large := servePath(test.X[:256])
	if large > small {
		t.Fatalf("shadow-scored serve path allocates per row: %.1f allocs at 8 rows vs %.1f at 256", small, large)
	}
}

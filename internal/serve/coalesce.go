package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"lam/internal/lamerr"
	"lam/internal/ml"
	"lam/internal/registry"
	"lam/internal/telemetry"
)

// CoalesceConfig tunes micro-batch coalescing of single-row /predict
// requests. Concurrent single-row requests that resolve to the same
// loaded model are queued and flushed as one batch when either
// MaxBatch rows have accumulated or MaxDelay has elapsed since the
// first row arrived — whichever comes first. Batch scoring is
// bit-identical to row-at-a-time scoring (the internal/ml contract),
// so coalescing is invisible to clients except as latency/throughput.
type CoalesceConfig struct {
	// MaxBatch is the flush size: a batch is scored as soon as this
	// many rows are waiting. <= 1 disables coalescing entirely.
	MaxBatch int
	// MaxDelay bounds how long the first row of a batch waits for
	// batch-mates before the partial batch is flushed anyway; it is the
	// worst-case latency coalescing can add to a request. <= 0 means
	// 1ms.
	MaxDelay time.Duration
}

func (c CoalesceConfig) enabled() bool { return c.MaxBatch > 1 }

func (c CoalesceConfig) normalized() CoalesceConfig {
	if c.MaxDelay <= 0 {
		c.MaxDelay = time.Millisecond
	}
	return c
}

// coalescer accumulates concurrent single-row requests into per-model
// batches. Keying by loaded *registry.Model (not by name) means a hot
// swap naturally starts a fresh batch for the new version while rows
// already queued flush on the model they were admitted against — the
// same finish-on-the-old-version semantics in-flight batch requests
// get.
type coalescer struct {
	cfg     CoalesceConfig
	metrics *Metrics

	mu      sync.Mutex
	pending map[*registry.Model]*pendingBatch
}

// flushResult is one waiter's share of a flushed batch.
type flushResult struct {
	y   float64
	err error
}

// pendingBatch is a batch still accumulating rows. Waiter channels are
// buffered so the flusher never blocks on a departed client.
type pendingBatch struct {
	rows    [][]float64
	waiters []chan flushResult
	timer   *time.Timer
}

func newCoalescer(cfg CoalesceConfig, m *Metrics) *coalescer {
	return &coalescer{
		cfg:     cfg.normalized(),
		metrics: m,
		pending: make(map[*registry.Model]*pendingBatch),
	}
}

// predict enqueues one row for model m and blocks until its batch is
// flushed (by size or by timer) and the row's result fans back out.
// Cancellation abandons the wait, never the batch: the row is scored
// and discarded, so batch-mates are unaffected.
func (c *coalescer) predict(ctx context.Context, m *registry.Model, x []float64) (float64, error) {
	// The coalesce span is the queue wait: enqueue to fan-out. It is
	// what -trace-slow shows when MaxDelay dominates a request.
	defer telemetry.StartSpan(ctx, "coalesce").End()
	ch := make(chan flushResult, 1)
	c.mu.Lock()
	b := c.pending[m]
	if b == nil {
		b = &pendingBatch{}
		c.pending[m] = b
		// The timer flush handles the trickle case: a lone request
		// waits at most MaxDelay before being scored solo.
		b.timer = time.AfterFunc(c.cfg.MaxDelay, func() { c.flushTimer(m, b) })
	}
	b.rows = append(b.rows, x)
	b.waiters = append(b.waiters, ch)
	full := len(b.rows) >= c.cfg.MaxBatch
	if full {
		delete(c.pending, m)
		b.timer.Stop()
	}
	c.mu.Unlock()
	if full {
		// The goroutine that completed the batch scores it; the other
		// members just wait on their channels.
		c.flush(m, b)
	}
	select {
	case res := <-ch:
		return res.y, res.err
	case <-ctx.Done():
		return 0, fmt.Errorf("serve: %w: %w", lamerr.ErrCancelled, ctx.Err())
	}
}

// flushTimer is the MaxDelay path. The batch may have been flushed by
// size (and a new one started under the same key) between the timer
// firing and the lock being taken, so it flushes only the exact batch
// it was armed for.
func (c *coalescer) flushTimer(m *registry.Model, b *pendingBatch) {
	c.mu.Lock()
	if c.pending[m] != b {
		c.mu.Unlock()
		return
	}
	delete(c.pending, m)
	c.mu.Unlock()
	c.flush(m, b)
}

// flush scores the coalesced rows as one batch into a pooled buffer
// and fans the results back out. The flush context is deliberately not
// any single request's: one disconnecting client must not cancel its
// batch-mates. If the batch call fails, every row is re-scored
// individually so one bad row cannot poison the batch — each waiter
// receives exactly the value or error a direct single-row call would
// have produced, which is the "never a wrong answer" half of the
// coalescing contract.
func (c *coalescer) flush(m *registry.Model, b *pendingBatch) {
	c.metrics.CoalesceFlushes.Add(1)
	c.metrics.CoalesceRows.Add(uint64(len(b.rows)))
	c.metrics.CoalesceMaxFlush.SetMax(int64(len(b.rows)))
	buf := ml.GetScratch(len(b.rows))
	defer ml.PutScratch(buf)
	if err := m.PredictBatchInto(context.Background(), b.rows, *buf); err == nil {
		for i, ch := range b.waiters {
			ch <- flushResult{y: (*buf)[i]}
		}
		return
	}
	for i, ch := range b.waiters {
		y, err := m.Predict(context.Background(), b.rows[i])
		ch <- flushResult{y: y, err: err}
	}
}

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"lam/internal/experiments"
	"lam/internal/machine"
	"lam/internal/ml"
	"lam/internal/online"
	"lam/internal/registry"
)

// loadedRegressorModel publishes a trained extra-trees pipeline and
// loads it back, mirroring what the serve cache holds for a regressor
// artifact. The registry is returned too, for full-server benches.
func loadedRegressorModel(t testing.TB) (*registry.Model, [][]float64, *registry.Registry) {
	t.Helper()
	m := machine.BlueWatersXE6()
	ds, err := experiments.DatasetByName("stencil-grid", m, 42)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	train, test, err := ds.SampleFraction(0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	et := &ml.Pipeline{Model: ml.NewExtraTrees(50, 7)}
	if err := et.Fit(train.X, train.Y); err != nil {
		t.Fatal(err)
	}
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.SaveRegressor(et, registry.Meta{Name: "grid-et"}); err != nil {
		t.Fatal(err)
	}
	lm, err := reg.Load("grid-et", 0)
	if err != nil {
		t.Fatal(err)
	}
	lm.Workers = 1
	return lm, test.X[:256], reg
}

// TestServeBatchZeroPerRowAllocations is the serve hot-path contract
// of the compiled inference plane: once the request is decoded and the
// pooled output buffer is in hand, scoring a batch through the loaded
// model performs zero allocations in steady state — the registry
// artifact decodes straight into compiled flat node tables and the
// pipeline's scaled row comes from pooled scratch.
func TestServeBatchZeroPerRowAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	lm, X, _ := loadedRegressorModel(t)
	ctx := context.Background()
	out := ml.GetScratch(len(X))
	defer ml.PutScratch(out)

	// Warm the scratch pools once.
	if err := lm.PredictBatchInto(ctx, X, *out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := lm.PredictBatchInto(ctx, X, *out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("serve batch path allocates %.1f per %d-row batch, want 0", allocs, len(X))
	}
}

// TestServeBatchZeroPerRowAllocationsOnlineEnabled re-runs the
// zero-allocation contract with the online adaptation plane attached
// and actively ingesting, and — unlike the base test — it drives the
// handler's actual serving sequence: hot-swap pointer resolution
// (srv.load), pooled output checkout, batch scoring. Resolution costs
// a small per-request constant (the latest-version directory scan),
// so the assertion is the per-row contract: allocations must not grow
// with the batch size.
func TestServeBatchZeroPerRowAllocationsOnlineEnabled(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	_, X, reg := loadedRegressorModel(t)
	srv := New(reg)
	srv.Workers = 1
	plane := online.New(reg, online.Config{DisableRetrain: true, Workers: 1})
	defer plane.Close()
	srv.AttachOnline(plane)

	ctx := context.Background()
	// Populate the model's observation window so the plane is in its
	// steady serving state, not a cold map.
	lm, err := srv.load(ctx, "grid-et", 0)
	if err != nil {
		t.Fatal(err)
	}
	preds := make([]float64, len(X))
	if err := lm.PredictBatchInto(ctx, X, preds); err != nil {
		t.Fatal(err)
	}
	if _, err := plane.Observe(lm, X, preds, preds); err != nil {
		t.Fatal(err)
	}

	servePath := func(rows [][]float64) float64 {
		// Warm the scratch pool at this size before measuring.
		out := ml.GetScratch(len(rows))
		ml.PutScratch(out)
		return testing.AllocsPerRun(50, func() {
			m, err := srv.load(ctx, "grid-et", 0)
			if err != nil {
				t.Fatal(err)
			}
			buf := ml.GetScratch(len(rows))
			if err := m.PredictBatchInto(ctx, rows, *buf); err != nil {
				t.Fatal(err)
			}
			ml.PutScratch(buf)
		})
	}
	small, large := servePath(X[:64]), servePath(X)
	if large > small {
		t.Fatalf("online-enabled serve path allocates per row: %.1f allocs at 64 rows vs %.1f at %d rows",
			small, large, len(X))
	}
}

// BenchmarkServePredictBatch is the serve-side half of the compiled
// plane's before/after pairs: one /predict-equivalent batch scored
// through the loaded registry model into a pooled buffer (the handler
// path minus HTTP codec). Pair it with
// BenchmarkForestPredictBatch/recursive in internal/ml for the
// pre-refactor traversal cost.
func BenchmarkServePredictBatch(b *testing.B) {
	lm, X, _ := loadedRegressorModel(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := ml.GetScratch(len(X))
		if err := lm.PredictBatchInto(ctx, X, *out); err != nil {
			b.Fatal(err)
		}
		ml.PutScratch(out)
	}
}

// BenchmarkServeRoundTrip measures the whole /predict batch round trip
// — HTTP, JSON codec both ways, pooled buffers, compiled batch scoring
// — for a 256-row request against a live test server.
func BenchmarkServeRoundTrip(b *testing.B) {
	_, X, reg := loadedRegressorModel(b)
	srv := New(reg)
	srv.Workers = 1
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, err := json.Marshal(map[string]any{"model": "grid-et", "batch": X})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"lam/internal/experiments"
	"lam/internal/hybrid"
	"lam/internal/machine"
	"lam/internal/ml"
	"lam/internal/registry"
)

// newTestServer builds a registry in a temp dir holding one trained
// hybrid model and one regressor, and returns the running test server
// plus the models and a held-out matrix.
func newTestServer(t *testing.T) (*httptest.Server, *hybrid.Model, ml.Regressor, [][]float64) {
	t.Helper()
	m := machine.BlueWatersXE6()
	ds, err := experiments.DatasetByName("stencil-grid", m, 42)
	if err != nil {
		t.Fatal(err)
	}
	am, err := experiments.AMByDataset("stencil-grid", m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	train, test, err := ds.SampleFraction(0.02, rng)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := hybrid.Train(train, am, hybrid.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	et := &ml.Pipeline{Model: ml.NewExtraTrees(25, 7)}
	if err := et.Fit(train.X, train.Y); err != nil {
		t.Fatal(err)
	}

	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.SaveHybrid(hy, registry.Meta{
		Name: "grid-hybrid", Workload: "stencil-grid", Machine: "bluewaters",
		TrainSize: train.Len(),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.SaveRegressor(et, registry.Meta{Name: "grid-et"}); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(New(reg).Handler())
	t.Cleanup(ts.Close)
	return ts, hy, et, test.X[:32]
}

func postPredict(t *testing.T, url string, req any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

type predictOut struct {
	Model   string    `json:"model"`
	Version int       `json:"version"`
	Y       *float64  `json:"y"`
	YBatch  []float64 `json:"y_batch"`
}

// TestBatchPredictBitIdentical is the acceptance check: a batched
// /predict answer from a registry-loaded model equals the library call
// bit for bit.
func TestBatchPredictBitIdentical(t *testing.T) {
	ts, hy, et, X := newTestServer(t)

	want, err := hy.PredictBatchCtx(context.Background(), X)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postPredict(t, ts.URL, map[string]any{"model": "grid-hybrid", "batch": X})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out predictOut
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	if out.Model != "grid-hybrid" || out.Version != 1 {
		t.Fatalf("echoed identity %s v%d", out.Model, out.Version)
	}
	if len(out.YBatch) != len(want) {
		t.Fatalf("got %d predictions, want %d", len(out.YBatch), len(want))
	}
	for i := range want {
		if out.YBatch[i] != want[i] {
			t.Fatalf("row %d: served %v != library %v", i, out.YBatch[i], want[i])
		}
	}

	// Regressor path too.
	wantET, err := ml.PredictBatchCtx(context.Background(), et, X, 0)
	if err != nil {
		t.Fatal(err)
	}
	resp, body = postPredict(t, ts.URL, map[string]any{"model": "grid-et", "batch": X})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	out = predictOut{}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	for i := range wantET {
		if out.YBatch[i] != wantET[i] {
			t.Fatalf("et row %d: served %v != library %v", i, out.YBatch[i], wantET[i])
		}
	}
}

// TestSinglePredict checks the single-vector shape.
func TestSinglePredict(t *testing.T) {
	ts, hy, _, X := newTestServer(t)
	want, err := hy.Predict(X[0])
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postPredict(t, ts.URL, map[string]any{"model": "grid-hybrid", "x": X[0]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out predictOut
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Y == nil || *out.Y != want {
		t.Fatalf("served %v, want %v", out.Y, want)
	}
}

// TestErrorMapping checks status codes for the typed failure classes.
func TestErrorMapping(t *testing.T) {
	ts, _, _, X := newTestServer(t)
	cases := []struct {
		name   string
		req    any
		status int
	}{
		{"unknown model", map[string]any{"model": "nope", "x": X[0]}, http.StatusNotFound},
		{"path-shaped model name", map[string]any{"model": "../../etc", "x": X[0]}, http.StatusNotFound},
		{"unknown version", map[string]any{"model": "grid-hybrid", "version": 99, "x": X[0]}, http.StatusNotFound},
		{"missing model", map[string]any{"x": X[0]}, http.StatusBadRequest},
		{"both x and batch", map[string]any{"model": "grid-hybrid", "x": X[0], "batch": X}, http.StatusBadRequest},
		{"neither x nor batch", map[string]any{"model": "grid-hybrid"}, http.StatusBadRequest},
		{"wrong arity", map[string]any{"model": "grid-hybrid", "x": []float64{1}}, http.StatusBadRequest},
		{"wrong arity regressor", map[string]any{"model": "grid-et", "x": []float64{1}}, http.StatusBadRequest},
		{"unknown field", map[string]any{"model": "grid-hybrid", "x": X[0], "bogus": 1}, http.StatusBadRequest},
		// Arity is right but the analytical model rejects the values:
		// the client's fault, not a 500.
		{"model-rejected values", map[string]any{"model": "grid-hybrid", "x": []float64{-1, 240, 160}}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, body := postPredict(t, ts.URL, c.req)
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d (%s), want %d", c.name, resp.StatusCode, body, c.status)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: body %s is not a JSON error", c.name, body)
		}
	}
}

// TestHealthzAndModels checks the observability endpoints.
func TestHealthzAndModels(t *testing.T) {
	ts, _, _, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status string `json:"status"`
		Models int    `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || h.Status != "ok" || h.Models != 2 {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, h)
	}

	resp2, err := http.Get(ts.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var ms struct {
		Models []registry.Meta `json:"models"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&ms); err != nil {
		t.Fatal(err)
	}
	if len(ms.Models) != 2 {
		t.Fatalf("models: %+v", ms.Models)
	}
	for _, m := range ms.Models {
		if m.CreatedAt.IsZero() || m.Kind == "" {
			t.Fatalf("incomplete metadata: %+v", m)
		}
	}
}

// TestReadyz covers the readiness lifecycle: a replica with pending
// warm names answers 503 "warming" (while /healthz already says ok),
// and flips to 200 "ready" once Warm has loaded them.
func TestReadyz(t *testing.T) {
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	et := &ml.Pipeline{Model: ml.NewExtraTrees(5, 7)}
	if err := et.Fit([][]float64{{1, 2}, {3, 4}, {5, 6}}, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.SaveRegressor(et, registry.Meta{Name: "warm-me"}); err != nil {
		t.Fatal(err)
	}
	s := New(reg)
	s.WarmNames = []string{"warm-me"}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	getReadyz := func() (int, readyzResponse) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var r readyzResponse
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, r
	}

	code, r := getReadyz()
	if code != http.StatusServiceUnavailable || r.Status != "warming" {
		t.Fatalf("cold readyz: %d %+v, want 503 warming", code, r)
	}
	if len(r.Warming) != 1 || r.Warming[0] != "warm-me" {
		t.Fatalf("cold readyz warming list: %+v", r.Warming)
	}
	// Liveness is already fine while readiness is not.
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz during warming: %d, want 200", hz.StatusCode)
	}

	if err := s.Warm(); err != nil {
		t.Fatal(err)
	}
	code, r = getReadyz()
	if code != http.StatusOK || r.Status != "ready" || r.Models != 1 {
		t.Fatalf("warm readyz: %d %+v, want 200 ready", code, r)
	}
}

// TestCacheEviction republishes a model several times and checks the
// server retains at most keepVersionsPerName deserialized versions.
func TestCacheEviction(t *testing.T) {
	m := machine.BlueWatersXE6()
	ds, err := experiments.DatasetByName("stencil-grid", m, 42)
	if err != nil {
		t.Fatal(err)
	}
	am, err := experiments.AMByDataset("stencil-grid", m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	train, test, err := ds.SampleFraction(0.02, rng)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	hy, err := hybrid.Train(train, am, hybrid.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(reg)
	meta := registry.Meta{Name: "m", Workload: "stencil-grid", Machine: "bluewaters"}
	for i := 0; i < 5; i++ {
		if _, err := reg.SaveHybrid(hy, meta); err != nil {
			t.Fatal(err)
		}
		// Latest resolution rides the hot-swap pointer, not the pinned
		// cache — it must still track each publish.
		lm, err := srv.load(context.Background(), "m", 0)
		if err != nil {
			t.Fatal(err)
		}
		if lm.Meta.Version != i+1 {
			t.Fatalf("publish %d served v%d", i+1, lm.Meta.Version)
		}
	}
	// Pinning the version the hot pointer serves must reuse its
	// instance, not deserialize a second copy.
	latest, err := srv.load(context.Background(), "m", 0)
	if err != nil {
		t.Fatal(err)
	}
	pinnedLatest, err := srv.load(context.Background(), "m", 5)
	if err != nil {
		t.Fatal(err)
	}
	if pinnedLatest != latest {
		t.Fatal("pin of the current latest loaded a duplicate instance")
	}
	// Pin the superseded versions: this is the path the bounded cache
	// serves and evicts.
	for v := 1; v <= 4; v++ {
		if _, err := srv.load(context.Background(), "m", v); err != nil {
			t.Fatal(err)
		}
	}
	srv.mu.RLock()
	cached := len(srv.cache)
	srv.mu.RUnlock()
	if cached > keepVersionsPerName {
		t.Fatalf("cache holds %d versions, want <= %d", cached, keepVersionsPerName)
	}
	if ev := srv.Metrics.ModelCacheEvictions.Load(); ev < 2 {
		t.Fatalf("evicted %d pinned versions, want >= 2", ev)
	}
	// Pinned old versions still load correctly (just uncached).
	lm, err := srv.load(context.Background(), "m", 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := hy.Predict(test.X[0])
	if err != nil {
		t.Fatal(err)
	}
	got, err := lm.Predict(context.Background(), test.X[0])
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("pinned v1 predicts %v, want %v", got, want)
	}
}

// TestLatestResolution saves a second version and checks version 0
// resolves to it without restarting the server.
func TestLatestResolution(t *testing.T) {
	m := machine.BlueWatersXE6()
	ds, err := experiments.DatasetByName("stencil-grid", m, 42)
	if err != nil {
		t.Fatal(err)
	}
	am, err := experiments.AMByDataset("stencil-grid", m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	train, test, err := ds.SampleFraction(0.02, rng)
	if err != nil {
		t.Fatal(err)
	}
	hy1, err := hybrid.Train(train, am, hybrid.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	meta := registry.Meta{Name: "m", Workload: "stencil-grid", Machine: "bluewaters"}
	if _, err := reg.SaveHybrid(hy1, meta); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg).Handler())
	defer ts.Close()

	x := test.X[0]
	resp, body := postPredict(t, ts.URL, map[string]any{"model": "m", "x": x})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out predictOut
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Version != 1 {
		t.Fatalf("first predict served v%d", out.Version)
	}

	hy2, err := hybrid.Train(train, am, hybrid.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.SaveHybrid(hy2, meta); err != nil {
		t.Fatal(err)
	}
	resp, body = postPredict(t, ts.URL, map[string]any{"model": "m", "x": x})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	out = predictOut{}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Version != 2 {
		t.Fatalf("post-save predict served v%d, want 2", out.Version)
	}
	want, err := hy2.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	if out.Y == nil || *out.Y != want {
		t.Fatalf("served %v, want v2 prediction %v", out.Y, want)
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"lam/internal/dataset"
	"lam/internal/experiments"
	"lam/internal/hybrid"
	"lam/internal/machine"
	"lam/internal/online"
	"lam/internal/registry"
)

// TestHotSwapMidPredictStream publishes a new version while a fleet of
// clients hammers /predict: every response must be OK and bit-identical
// to one of the two models — never an error, never a blend — and each
// client's served version must be monotone non-decreasing (the atomic
// pointer can only move forward).
func TestHotSwapMidPredictStream(t *testing.T) {
	m := machine.BlueWatersXE6()
	ds, err := experiments.DatasetByName("stencil-grid", m, 42)
	if err != nil {
		t.Fatal(err)
	}
	am, err := experiments.AMByDataset("stencil-grid", m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	train, test, err := ds.SampleFraction(0.02, rng)
	if err != nil {
		t.Fatal(err)
	}
	hy1, err := hybrid.Train(train, am, hybrid.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	hy2, err := hybrid.Train(train, am, hybrid.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	x := test.X[0]
	want1, err := hy1.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := hy2.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	if want1 == want2 {
		t.Fatal("fixture models agree; the test cannot tell versions apart")
	}

	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	meta := registry.Meta{Name: "m", Workload: "stencil-grid", Machine: "bluewaters"}
	if _, err := reg.SaveHybrid(hy1, meta); err != nil {
		t.Fatal(err)
	}
	srv := New(reg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients = 8
	const perClient = 40
	published := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	sawNew := make(chan int, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lastVersion := 0
			newSeen := 0
			for i := 0; i < perClient; i++ {
				if i == perClient/4 && c == 0 {
					// One client gates the publish so roughly three
					// quarters of the traffic brackets the swap.
					if _, err := reg.SaveHybrid(hy2, meta); err != nil {
						errs <- err
						return
					}
					close(published)
				}
				resp, body := postPredict(t, ts.URL, map[string]any{"model": "m", "x": x})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("client %d request %d: status %d (%s)", c, i, resp.StatusCode, body)
					return
				}
				var out predictOut
				if err := json.Unmarshal(body, &out); err != nil {
					errs <- err
					return
				}
				if out.Version < lastVersion {
					errs <- fmt.Errorf("client %d: served version moved backwards %d -> %d", c, lastVersion, out.Version)
					return
				}
				lastVersion = out.Version
				want := want1
				if out.Version == 2 {
					want = want2
					newSeen++
				}
				if out.Y == nil || *out.Y != want {
					errs <- fmt.Errorf("client %d: v%d served %v, want bit-identical %v", c, out.Version, out.Y, want)
					return
				}
			}
			sawNew <- newSeen
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	<-published
	// The swap must actually have landed for later traffic.
	resp, body := postPredict(t, ts.URL, map[string]any{"model": "m", "x": x})
	var out predictOut
	if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &out) != nil || out.Version != 2 {
		t.Fatalf("post-stream request served %s", body)
	}
	close(sawNew)
	total := 0
	for n := range sawNew {
		total += n
	}
	if total == 0 {
		t.Fatal("no client observed the new version mid-stream")
	}
}

// TestObserveEndToEndDrift is the acceptance run for the online plane,
// over real HTTP: a hybrid trained on the source machine serves
// predictions; hardware-transfer observations (same workload measured
// on a different machine) are replayed through POST /observe; the
// drift detector trips; the background retrain merges the window with
// the original training set and publishes v2; the server hot-swaps
// mid-stream with zero failed requests; and the post-swap windowed
// MAPE is measurably below the pre-swap window.
func TestObserveEndToEndDrift(t *testing.T) {
	sc, err := experiments.NewDriftScenario("stencil-blocking", "bluewaters", "xeon", 0.02, 42)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := hybrid.Train(sc.Train, sc.AM, hybrid.Config{Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := hy.MAPE(sc.SourceTest)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.SaveHybrid(hy, registry.Meta{
		Name: "blk", Workload: sc.Workload, Machine: sc.SourceName,
		TrainSize: sc.Train.Len(), TestMAPE: baseline,
	}); err != nil {
		t.Fatal(err)
	}

	srv := New(reg)
	srv.Workers = 1
	plane := online.New(reg, online.Config{
		WindowSize: 256,
		// The later the detector may trip, the more target-machine
		// samples the retrain gets to merge — the blocking space needs
		// a couple hundred to adapt decisively.
		Detector: online.DetectorConfig{MinSamples: 192},
		BaseData: func(meta registry.Meta) (*dataset.Dataset, error) {
			return sc.Train, nil
		},
		Seed:    7,
		Workers: 1,
	})
	defer plane.Close()
	srv.AttachOnline(plane)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	type driftView struct {
		Version int           `json:"version"`
		Drift   online.Status `json:"drift"`
	}
	postObserve := func(lo, hi int) driftView {
		t.Helper()
		resp, body := postJSON(t, ts.URL+"/observe", map[string]any{
			"model": "blk", "batch": sc.Stream.X[lo:hi], "y_batch": sc.Stream.Y[lo:hi],
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/observe [%d:%d]: status %d (%s)", lo, hi, resp.StatusCode, body)
		}
		var v driftView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatalf("decoding %s: %v", body, err)
		}
		return v
	}

	const batch = 32
	swapped := false
	var preSwap, postSwap float64
	deadline := time.Now().Add(2 * time.Minute)
	sent := 0
	for ; sent+batch <= sc.Stream.Len(); sent += batch {
		if time.Now().After(deadline) {
			t.Fatal("stream deadline exceeded")
		}
		v := postObserve(sent, sent+batch)
		// Interleave a /predict on every batch: the prediction path
		// must never fail, before, during or after the swap.
		resp, body := postPredict(t, ts.URL, map[string]any{"model": "blk", "x": sc.Stream.X[sent]})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/predict during stream: status %d (%s)", resp.StatusCode, body)
		}
		if !swapped && v.Version >= 2 {
			swapped = true
			preSwap = v.Drift.PreSwapMAPE
			if preSwap <= 0 {
				t.Fatalf("swap landed without a recorded pre-swap MAPE: %+v", v.Drift)
			}
		}
		if swapped && v.Drift.Window.Count >= 128 {
			postSwap = v.Drift.Window.MAPE
			sent += batch
			break
		}
		// The background retrain needs a moment once the detector has
		// tripped; without the pause the stream can exhaust the window
		// before the publish lands.
		if v.Drift.Retraining {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !swapped {
		t.Fatalf("no hot swap within %d observations", sent)
	}
	if postSwap == 0 {
		t.Fatal("stream ended before the post-swap window filled")
	}
	// "Measurably lower", not just nominally: the post-swap window must
	// shed at least 40% of the pre-swap error and at least 10 MAPE
	// points. (Empirically ~68% -> ~35% on this fixture; the margin
	// leaves room for seed drift without letting a non-adaptation pass.)
	if postSwap >= 0.6*preSwap || postSwap >= preSwap-10 {
		t.Fatalf("adaptation too weak: pre-swap windowed MAPE %.2f%%, post-swap %.2f%%", preSwap, postSwap)
	}
	t.Logf("windowed MAPE pre-swap %.2f%% -> post-swap %.2f%% (baseline %.2f%%)", preSwap, postSwap, baseline)

	// The drift endpoint reports the adapted state.
	resp, err := http.Get(ts.URL + "/models/blk/drift")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st online.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Model != "blk" || st.Version < 2 {
		t.Fatalf("drift endpoint reports %+v", st)
	}
	if st.LastPublished == nil || st.LastPublished.Version < 2 {
		t.Fatalf("drift endpoint lacks publish provenance: %+v", st)
	}
	if st.RetrainsPublished < 1 || st.Trips < 1 {
		t.Fatalf("counters inconsistent: %+v", st)
	}

	// The registry carries the retrained artifact with provenance.
	m2, err := reg.Load("blk", 0)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Meta.Version < 2 || m2.Meta.Notes == "" || m2.Meta.TestMAPE <= 0 {
		t.Fatalf("retrained meta: %+v", m2.Meta)
	}
}

// TestObserveValidation exercises the ingest endpoint's error paths.
func TestObserveValidation(t *testing.T) {
	ts, _, _, X := newOnlineTestServer(t)
	y := 0.5
	cases := []struct {
		name   string
		req    any
		status int
	}{
		{"missing model", map[string]any{"x": X[0], "y": y}, http.StatusBadRequest},
		{"unknown model", map[string]any{"model": "nope", "x": X[0], "y": y}, http.StatusNotFound},
		{"x without y", map[string]any{"model": "grid-hybrid", "x": X[0]}, http.StatusBadRequest},
		{"both shapes", map[string]any{"model": "grid-hybrid", "x": X[0], "y": y, "batch": X, "y_batch": []float64{1}}, http.StatusBadRequest},
		{"length mismatch", map[string]any{"model": "grid-hybrid", "batch": X[:2], "y_batch": []float64{1}}, http.StatusBadRequest},
		{"non-finite observation", map[string]any{"model": "grid-hybrid", "x": X[0], "y": "NaN"}, http.StatusBadRequest},
		{"wrong arity", map[string]any{"model": "grid-hybrid", "x": []float64{1}, "y": y}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+"/observe", c.req)
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d (%s), want %d", c.name, resp.StatusCode, body, c.status)
		}
	}
	// A valid single observation lands in the window.
	resp, body := postJSON(t, ts.URL+"/observe", map[string]any{"model": "grid-hybrid", "x": X[0], "y": y})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid observe: status %d (%s)", resp.StatusCode, body)
	}
	var out struct {
		Ingested int           `json:"ingested"`
		Drift    online.Status `json:"drift"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Ingested != 1 || out.Drift.Window.Count != 1 {
		t.Fatalf("observe response %+v", out)
	}
}

// TestMetricsEndpoint drives a little traffic and checks the counter
// dump.
func TestMetricsEndpoint(t *testing.T) {
	ts, _, _, X := newOnlineTestServer(t)
	for i := 0; i < 3; i++ {
		resp, body := postPredict(t, ts.URL, map[string]any{"model": "grid-hybrid", "batch": X})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict: %d (%s)", resp.StatusCode, body)
		}
	}
	resp, body := postPredict(t, ts.URL, map[string]any{"model": "nope", "x": X[0]})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("expected 404, got %d (%s)", resp.StatusCode, body)
	}
	obs, body := postJSON(t, ts.URL+"/observe", map[string]any{"model": "grid-hybrid", "x": X[0], "y": 0.5})
	if obs.StatusCode != http.StatusOK {
		t.Fatalf("observe: %d (%s)", obs.StatusCode, body)
	}

	exp, err := scrapeStrict(t, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"lam_predict_requests_total":       4,
		"lam_predict_batch_requests_total": 3,
		"lam_predict_rows_total":           float64(3 * len(X)),
		"lam_predict_errors_total":         1,
		"lam_observe_requests_total":       1,
		"lam_observe_rows_total":           1,
		"lam_online_observations_total":    1,
	}
	for name, v := range want {
		f := exp.Family(name)
		if f == nil || len(f.Samples) == 0 {
			t.Errorf("family %s missing", name)
			continue
		}
		if got := f.Samples[0].Value; got != v {
			t.Errorf("%s = %v, want %v", name, got, v)
		}
	}
	if f := exp.Family("lam_predict_latency_seconds"); f == nil || f.Type != "histogram" {
		t.Errorf("predict latency histogram missing: %+v", f)
	}
}

// newOnlineTestServer is newTestServer with an attached (quiet) online
// plane: big window, automatic retraining disabled, so tests can poke
// the endpoints without background churn.
func newOnlineTestServer(t *testing.T) (*httptest.Server, *Server, *online.Plane, [][]float64) {
	t.Helper()
	m := machine.BlueWatersXE6()
	ds, err := experiments.DatasetByName("stencil-grid", m, 42)
	if err != nil {
		t.Fatal(err)
	}
	am, err := experiments.AMByDataset("stencil-grid", m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	train, test, err := ds.SampleFraction(0.02, rng)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := hybrid.Train(train, am, hybrid.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.SaveHybrid(hy, registry.Meta{
		Name: "grid-hybrid", Workload: "stencil-grid", Machine: "bluewaters",
		TrainSize: train.Len(), TestMAPE: 10,
	}); err != nil {
		t.Fatal(err)
	}
	srv := New(reg)
	plane := online.New(reg, online.Config{DisableRetrain: true, Seed: 1, Workers: 1})
	t.Cleanup(plane.Close)
	srv.AttachOnline(plane)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv, plane, test.X[:8]
}

func postJSON(t *testing.T, url string, req any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

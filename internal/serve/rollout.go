package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"

	"lam/internal/lamerr"
	"lam/internal/ml"
	"lam/internal/online"
	"lam/internal/registry"
	"lam/internal/rollout"
	"lam/internal/telemetry"
)

// AttachRollout wires a progressive-delivery controller into the
// server: newly published versions shadow-score and canary instead of
// swapping straight into the latest pointer, and the
// /models/{name}/rollout endpoints start serving. Call after
// AttachOnline (the controller pauses the plane's retrainer while a
// candidate is under evaluation) and before Handler.
func (s *Server) AttachRollout(c *rollout.Controller) {
	s.rollout = c
	if c.Log == nil {
		c.Log = s.Log
	}
	// Candidates load through the pinned-version cache so they share
	// the server's Workers and Layout settings — shadow predictions are
	// bit-identical to serving the candidate directly.
	c.Load = func(ctx context.Context, name string, version int) (*registry.Model, error) {
		return s.loadPinned(ctx, name, version)
	}
	c.OnBegin = func(name string, _ int) {
		// One candidate at a time: a second publish mid-rollout would
		// invalidate the comparison window.
		if s.online != nil {
			s.online.SetRetrainPaused(name, true)
		}
	}
	c.OnPromote = func(name string, _ int) {
		// The pin is gone; swap the winner into the hot pointer eagerly
		// and re-arm adaptation on a clean window.
		_, _ = s.Reload(name)
		if s.online != nil {
			s.online.ResetWindow(name)
			s.online.SetRetrainPaused(name, false)
		}
	}
	c.OnRollback = func(name string, _ int) {
		// The candidate never entered the latest pointer (the pin kept
		// it out), so there is nothing to un-swap: just re-arm the
		// plane. The rollout-era window mixed canary traffic; reset it
		// so the incumbent is judged on fresh samples.
		if s.online != nil {
			s.online.ResetWindow(name)
			s.online.SetRetrainPaused(name, false)
		}
	}
	// Shadow divergence is a relative quantity on the shared
	// nanosecond bucket ladder: 1.0 (candidate differs from the served
	// prediction by 100%) maps to 1s.
	s.shadowDiv = s.Telemetry.Histogram("lam_rollout_shadow_divergence",
		"Relative divergence between shadow and served predictions (1.0 = 1s bucket)")
	s.Telemetry.CollectFunc("lam_rollout_state",
		"Rollout phase per model (0 idle, 1 shadow, 2 canary)",
		telemetry.TypeGauge, func(emit func([]telemetry.Label, float64)) {
			for _, st := range c.Snapshot() {
				var v float64
				switch st.Phase {
				case rollout.PhaseShadow.String():
					v = 1
				case rollout.PhaseCanary.String():
					v = 2
				}
				emit([]telemetry.Label{telemetry.L("model", st.Model)}, v)
			}
		})
	s.Telemetry.CollectFunc("lam_rollout_promotions_total",
		"Candidates promoted after winning every canary gate",
		telemetry.TypeCounter, func(emit func([]telemetry.Label, float64)) {
			emit(nil, float64(c.Promotions()))
		})
	s.Telemetry.CollectFunc("lam_rollout_rollbacks_total",
		"Candidates rolled back and quarantined",
		telemetry.TypeCounter, func(emit func([]telemetry.Label, float64)) {
			emit(nil, float64(c.Rollbacks()))
		})
}

// Rollout returns the attached controller (nil without AttachRollout);
// embedders and tests use it to inspect or force transitions.
func (s *Server) Rollout() *rollout.Controller { return s.rollout }

// pinLatest clamps a freshly scanned registry version to the rollout
// pin. Routing every latest-resolution through the controller is also
// what begins a rollout the moment a new version appears.
func (s *Server) pinLatest(ctx context.Context, name string, latest int) int {
	if s.rollout == nil {
		return latest
	}
	if pin := s.rollout.Pin(ctx, name, latest); pin > 0 && pin < latest {
		return pin
	}
	return latest
}

// rolloutView returns the model's active rollout view for a latest
// (version 0) request; explicit version pins bypass the rollout.
func (s *Server) rolloutView(name string, version int) *rollout.View {
	if s.rollout == nil || version != 0 {
		return nil
	}
	return s.rollout.ActiveView(name)
}

// divergenceDuration maps |shadow-served|/|served| onto the shared
// nanosecond histogram ladder (1.0 relative divergence = 1s).
func divergenceDuration(served, shadow float64) time.Duration {
	denom := math.Abs(served)
	if denom < 1e-12 {
		denom = 1e-12
	}
	rel := math.Abs(shadow-served) / denom
	if rel > 1e6 {
		rel = 1e6
	}
	return time.Duration(rel * 1e9)
}

// recordShadow publishes one shadow-scored batch: divergence samples
// into the histogram and the raw predictions to the controller's sink
// (which must copy — the slices are pooled scratch).
func (s *Server) recordShadow(rv *rollout.View, X [][]float64, served, shadow []float64) {
	if s.shadowDiv != nil {
		for i := range shadow {
			s.shadowDiv.Observe(divergenceDuration(served[i], shadow[i]))
		}
	}
	if sink := s.rollout.ShadowSink; sink != nil {
		sink(rv.Model, rv.CandidateVersion(), X, shadow)
	}
}

// shadowScoreRow shadow-scores one served single-row request with the
// candidate. Runs after the response is written; a candidate failure
// here is silent by design (shadow must never surface to the client).
func (s *Server) shadowScoreRow(ctx context.Context, rv *rollout.View, x []float64, served float64) {
	sp := telemetry.StartSpan(ctx, "shadow")
	defer sp.End()
	y, err := rv.Candidate.Predict(ctx, x)
	if err != nil {
		return
	}
	if s.shadowDiv != nil {
		s.shadowDiv.Observe(divergenceDuration(served, y))
	}
	if sink := s.rollout.ShadowSink; sink != nil {
		sink(rv.Model, rv.CandidateVersion(), [][]float64{x}, []float64{y})
	}
}

// shadowScoreBatch shadow-scores one served batch request. The
// candidate scores into pooled scratch via the allocation-free batch
// path, so shadowing adds zero per-row allocations to serving.
func (s *Server) shadowScoreBatch(ctx context.Context, rv *rollout.View, X [][]float64, served []float64) {
	sp := telemetry.StartSpan(ctx, "shadow")
	defer sp.End()
	buf := ml.GetScratch(len(X))
	defer ml.PutScratch(buf)
	if err := rv.Candidate.PredictBatchInto(ctx, X, *buf); err != nil {
		return
	}
	s.recordShadow(rv, X, served, *buf)
}

// rolloutObserve is handleObserve's ingest path while a rollout is
// active: in shadow, the incumbent serves every row and the candidate
// scores them all on the side; in canary, rows are partitioned by the
// same deterministic hash /predict routes with, each side scored by
// its own version. Both sides' APEs feed the controller's gate.
func (s *Server) rolloutObserve(ctx context.Context, m *registry.Model, rv *rollout.View, X [][]float64, obs []float64) (online.Status, *rollout.Status, error) {
	name := m.Meta.Name
	if rv.Phase == rollout.PhaseShadow {
		inc := ml.GetScratch(len(X))
		defer ml.PutScratch(inc)
		psp := telemetry.StartSpan(ctx, "predict")
		err := m.PredictBatchInto(ctx, X, *inc)
		psp.End()
		if err != nil {
			return online.Status{}, nil, predictError(err)
		}
		isp := telemetry.StartSpan(ctx, "observe_ingest")
		status, err := s.online.Observe(m, X, *inc, obs)
		isp.End()
		if err != nil {
			return online.Status{}, nil, err
		}
		cand := ml.GetScratch(len(X))
		defer ml.PutScratch(cand)
		ssp := telemetry.StartSpan(ctx, "shadow")
		cerr := rv.Candidate.PredictBatchInto(ctx, X, *cand)
		ssp.End()
		var rst rollout.Status
		if cerr != nil {
			rst = s.rollout.Status(name)
		} else {
			s.recordShadow(rv, X, *inc, *cand)
			rst = s.rollout.Ingest(ctx, name, obs, *cand, obs, *inc)
		}
		return status, &rst, nil
	}
	// Canary: partition by the per-row routing hash.
	candX := make([][]float64, 0, len(X))
	incX := make([][]float64, 0, len(X))
	candObs := make([]float64, 0, len(obs))
	incObs := make([]float64, 0, len(obs))
	for i := range X {
		if rv.RouteRow(X[i]) {
			candX = append(candX, X[i])
			candObs = append(candObs, obs[i])
		} else {
			incX = append(incX, X[i])
			incObs = append(incObs, obs[i])
		}
	}
	var status online.Status
	var incPred []float64
	if len(incX) > 0 {
		inc := ml.GetScratch(len(incX))
		defer ml.PutScratch(inc)
		psp := telemetry.StartSpan(ctx, "predict")
		err := m.PredictBatchInto(ctx, incX, *inc)
		psp.End()
		if err != nil {
			return online.Status{}, nil, predictError(err)
		}
		isp := telemetry.StartSpan(ctx, "observe_ingest")
		status, err = s.online.Observe(m, incX, *inc, incObs)
		isp.End()
		if err != nil {
			return online.Status{}, nil, err
		}
		incPred = *inc
	} else {
		status = s.online.Status(m)
	}
	var candPred []float64
	if len(candX) > 0 {
		cand := ml.GetScratch(len(candX))
		defer ml.PutScratch(cand)
		csp := telemetry.StartSpan(ctx, "predict")
		cerr := rv.Candidate.PredictBatchInto(ctx, candX, *cand)
		csp.End()
		if cerr != nil {
			// The candidate failing to score its own canary share is a
			// gate signal in itself, but never a client error: drop the
			// rows and let the incumbent side keep the gate honest.
			candX, candObs = nil, nil
		} else {
			candPred = *cand
		}
	}
	rst := s.rollout.Ingest(ctx, name, candObs, candPred, incObs, incPred)
	return status, &rst, nil
}

// rolloutActionRequest is the POST /models/{name}/rollout body.
type rolloutActionRequest struct {
	// Action is one of "pause", "resume", "promote", "rollback".
	Action string `json:"action"`
}

// handleRolloutGet reports a model's rollout state. Resolving the
// model first both 404s unknown names and materializes (or resumes,
// after a restart) the controller's state for it.
func (s *Server) handleRolloutGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, err := s.load(r.Context(), name, 0); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.rollout.Status(name))
}

// handleRolloutPost applies an operator action to a model's rollout.
func (s *Server) handleRolloutPost(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, err := s.load(r.Context(), name, 0); err != nil {
		writeError(w, err)
		return
	}
	var req rolloutActionRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, fmt.Errorf("serve: %w: %w", lamerr.ErrBadRequest, err))
		return
	}
	var err error
	switch req.Action {
	case "pause":
		err = s.rollout.Pause(name, true)
	case "resume":
		err = s.rollout.Pause(name, false)
	case "promote":
		err = s.rollout.ForcePromote(name)
	case "rollback":
		err = s.rollout.ForceRollback(name)
	default:
		writeError(w, fmt.Errorf("serve: %w: unknown rollout action %q (want pause, resume, promote or rollback)",
			lamerr.ErrBadRequest, req.Action))
		return
	}
	if errors.Is(err, rollout.ErrNoRollout) {
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		return
	}
	if err != nil {
		writeError(w, err)
		return
	}
	if s.Log != nil {
		s.Log.Info("rollout action", "model", name, "action", req.Action)
	}
	writeJSON(w, http.StatusOK, s.rollout.Status(name))
}

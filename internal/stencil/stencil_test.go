package stencil

import (
	"math"
	"testing"
	"testing/quick"
)

// fillTest seeds a grid with a deterministic smooth-ish pattern.
func fillTest(g *Grid) {
	g.Fill(func(i, j, k int) float64 {
		return math.Sin(float64(i)*0.3) + math.Cos(float64(j)*0.7) + float64(k)*0.01
	})
}

func mustGrid(t *testing.T, i, j, k int) *Grid {
	t.Helper()
	g, err := NewGrid(i, j, k)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(0, 1, 1); err == nil {
		t.Error("expected error for zero dimension")
	}
	if _, err := NewGrid(4, -1, 4); err == nil {
		t.Error("expected error for negative dimension")
	}
}

func TestGridSetAt(t *testing.T) {
	g := mustGrid(t, 3, 3, 3)
	g.Set(2, 1, 3, 42)
	if got := g.At(2, 1, 3); got != 42 {
		t.Errorf("At = %v, want 42", got)
	}
	if got := g.At(1, 1, 1); got != 0 {
		t.Errorf("untouched cell = %v, want 0", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := mustGrid(t, 2, 2, 2)
	g.Set(1, 1, 1, 5)
	c := g.Clone()
	c.Set(1, 1, 1, 9)
	if g.At(1, 1, 1) != 5 {
		t.Error("Clone must not share storage")
	}
}

func TestMaxAbsDiffShapeMismatch(t *testing.T) {
	a := mustGrid(t, 2, 2, 2)
	b := mustGrid(t, 3, 2, 2)
	if _, err := a.MaxAbsDiff(b); err == nil {
		t.Error("expected shape error")
	}
}

// runMatchesReference checks that an optimised configuration reproduces
// the reference kernel bit-for-bit ordering-independent results to
// rounding tolerance.
func runMatchesReference(t *testing.T, cfg Config, steps int) {
	t.Helper()
	src := mustGrid(t, 20, 17, 9)
	fillTest(src)

	// Reference: ping-pong manually.
	ra, rb := src.Clone(), src.Clone()
	for s := 0; s < steps; s++ {
		if err := Reference(ra, rb, 0, 0); err != nil {
			t.Fatal(err)
		}
		ra, rb = rb, ra
	}

	cfg.TimeSteps = steps
	a, b := src.Clone(), src.Clone()
	got, err := Run(a, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := got.MaxAbsDiff(ra)
	if err != nil {
		t.Fatal(err)
	}
	if diff > 1e-13 {
		t.Errorf("config %+v: max diff vs reference = %g", cfg, diff)
	}
}

func TestRunMatchesReferenceVariants(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"naive", Config{}},
		{"blocked-small", Config{BI: 4, BJ: 4, BK: 2}},
		{"blocked-uneven", Config{BI: 7, BJ: 5, BK: 3}},
		{"blocked-oversize", Config{BI: 100, BJ: 100, BK: 100}},
		{"unroll2", Config{Unroll: 2}},
		{"unroll4", Config{Unroll: 4}},
		{"unroll8", Config{Unroll: 8}},
		{"unroll-with-blocking", Config{BI: 6, BJ: 4, BK: 3, Unroll: 4}},
		{"threads2", Config{Threads: 2}},
		{"threads8", Config{Threads: 8}},
		{"everything", Config{BI: 5, BJ: 3, BK: 2, Unroll: 3, Threads: 4}},
		{"threads-exceed-k", Config{Threads: 64}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			runMatchesReference(t, c.cfg, 1)
			runMatchesReference(t, c.cfg, 3)
		})
	}
}

func TestRunPropertyRandomConfigs(t *testing.T) {
	// Property: any normalised configuration computes the same field as
	// the reference kernel.
	f := func(bi, bj, bk, u, th uint8) bool {
		cfg := Config{
			BI:      int(bi%24) + 1,
			BJ:      int(bj%24) + 1,
			BK:      int(bk%12) + 1,
			Unroll:  int(u % 9),
			Threads: int(th%8) + 1,
		}
		src := mustGrid(t, 16, 13, 7)
		fillTest(src)
		ra, rb := src.Clone(), src.Clone()
		if err := Reference(ra, rb, 0, 0); err != nil {
			return false
		}
		a, b := src.Clone(), src.Clone()
		got, err := Run(a, b, cfg)
		if err != nil {
			return false
		}
		diff, err := got.MaxAbsDiff(rb)
		if err != nil {
			return false
		}
		return diff <= 1e-13
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRunShapeMismatch(t *testing.T) {
	a := mustGrid(t, 4, 4, 4)
	b := mustGrid(t, 5, 4, 4)
	if _, err := Run(a, b, Config{}); err == nil {
		t.Error("expected shape error")
	}
}

func TestGhostCellsActAsBoundary(t *testing.T) {
	// With interior zero and hot ghost faces, one sweep must pull heat
	// in only at the boundary-adjacent cells.
	g := mustGrid(t, 4, 4, 4)
	g.Fill(func(i, j, k int) float64 {
		if i == 0 {
			return 10
		}
		return 0
	})
	d := g.Clone()
	out, err := Run(g, d, Config{TimeSteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.At(1, 2, 2); got != 1.0 { // c1 * 10 = 0.1 * 10
		t.Errorf("boundary-adjacent cell = %v, want 1.0", got)
	}
	if got := out.At(3, 2, 2); got != 0 {
		t.Errorf("interior cell = %v, want 0", got)
	}
}

func TestRunConservesConstantField(t *testing.T) {
	// With C0 + 6*C1 = 1, a constant field is a fixed point.
	g := mustGrid(t, 6, 6, 6)
	g.Fill(func(i, j, k int) float64 { return 3.5 })
	d := g.Clone()
	out, err := Run(g, d, Config{TimeSteps: 5, BI: 3, BJ: 2, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 6; k++ {
		for j := 1; j <= 6; j++ {
			for i := 1; i <= 6; i++ {
				if v := out.At(i, j, k); math.Abs(v-3.5) > 1e-12 {
					t.Fatalf("constant field drifted to %v at (%d,%d,%d)", v, i, j, k)
				}
			}
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Unroll: 9}).Validate(); err == nil {
		t.Error("expected unroll validation error")
	}
	if err := (Config{Unroll: 8}).Validate(); err != nil {
		t.Errorf("unroll 8 should be valid: %v", err)
	}
}

package stencil

import (
	"math"
	"testing"
)

func TestRun27MatchesReference(t *testing.T) {
	cases := []Config{
		{},
		{BI: 5, BJ: 4, BK: 3},
		{Threads: 4},
		{BI: 7, BJ: 3, BK: 2, Threads: 3},
	}
	for _, cfg := range cases {
		src := mustGrid(t, 14, 11, 9)
		fillTest(src)
		ra, rb := src.Clone(), src.Clone()
		if err := Reference27(ra, rb, 0, 0); err != nil {
			t.Fatal(err)
		}
		cfg.TimeSteps = 1
		a, b := src.Clone(), src.Clone()
		got, err := Run27(a, b, cfg)
		if err != nil {
			t.Fatal(err)
		}
		diff, err := got.MaxAbsDiff(rb)
		if err != nil {
			t.Fatal(err)
		}
		if diff > 1e-12 {
			t.Errorf("config %+v: max diff %g", cfg, diff)
		}
	}
}

func TestRun27MultiStep(t *testing.T) {
	src := mustGrid(t, 10, 10, 6)
	fillTest(src)
	ra, rb := src.Clone(), src.Clone()
	for s := 0; s < 3; s++ {
		if err := Reference27(ra, rb, 0, 0); err != nil {
			t.Fatal(err)
		}
		ra, rb = rb, ra
	}
	a, b := src.Clone(), src.Clone()
	got, err := Run27(a, b, Config{TimeSteps: 3, BI: 4, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	diff, err := got.MaxAbsDiff(ra)
	if err != nil {
		t.Fatal(err)
	}
	if diff > 1e-12 {
		t.Errorf("3-step diff %g", diff)
	}
}

func TestRun27ConservesConstantField(t *testing.T) {
	// With C0 + 26·C1 = 1 a constant field is a fixed point.
	g := mustGrid(t, 6, 6, 6)
	g.Fill(func(i, j, k int) float64 { return 2.0 })
	d := g.Clone()
	out, err := Run27(g, d, Config{C0: 0.48, C1: 0.02, TimeSteps: 4})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 6; k++ {
		for j := 1; j <= 6; j++ {
			for i := 1; i <= 6; i++ {
				if v := out.At(i, j, k); math.Abs(v-2.0) > 1e-12 {
					t.Fatalf("drifted to %v at (%d,%d,%d)", v, i, j, k)
				}
			}
		}
	}
}

func TestRun27ShapeMismatch(t *testing.T) {
	a := mustGrid(t, 4, 4, 4)
	b := mustGrid(t, 5, 4, 4)
	if _, err := Run27(a, b, Config{}); err == nil {
		t.Error("expected shape error")
	}
	if err := Reference27(a, b, 0, 0); err == nil {
		t.Error("expected shape error")
	}
}

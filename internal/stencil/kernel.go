package stencil

import (
	"fmt"
	"sync"
)

// Config selects the kernel variant: the paper's PATUS modelling vector
// X = (I, J, K, bi, bj, bk, u, t) plus the discretisation coefficients.
type Config struct {
	// BI, BJ, BK are spatial block sizes; 0 disables blocking in that
	// dimension.
	BI, BJ, BK int
	// Unroll is the innermost-loop unroll factor, 0 (none) through 8.
	Unroll int
	// Threads is the worker count; 0 and 1 both mean serial.
	Threads int
	// TimeSteps is the number of Jacobi sweeps; 0 means 1.
	TimeSteps int
	// C0, C1 are the centre and neighbour coefficients. Both zero means
	// the heat-equation default (C0 = 0.4, C1 = 0.1).
	C0, C1 float64
}

func (c Config) normalized(g *Grid) Config {
	if c.BI <= 0 || c.BI > g.I {
		c.BI = g.I
	}
	if c.BJ <= 0 || c.BJ > g.J {
		c.BJ = g.J
	}
	if c.BK <= 0 || c.BK > g.K {
		c.BK = g.K
	}
	if c.Unroll < 0 {
		c.Unroll = 0
	}
	if c.Unroll > 8 {
		c.Unroll = 8
	}
	if c.Threads < 1 {
		c.Threads = 1
	}
	if c.TimeSteps < 1 {
		c.TimeSteps = 1
	}
	if c.C0 == 0 && c.C1 == 0 {
		c.C0, c.C1 = 0.4, 0.1
	}
	return c
}

// Validate reports configuration errors that normalisation cannot fix.
func (c Config) Validate() error {
	if c.Unroll > 8 {
		return fmt.Errorf("stencil: unroll factor %d exceeds 8", c.Unroll)
	}
	return nil
}

// Run performs cfg.TimeSteps Jacobi sweeps of the 7-point stencil over
// src, using dst as scratch. It returns the grid holding the final
// values (src or dst depending on parity). Both grids must have equal
// shape; ghost layers act as Dirichlet boundary values and are never
// written.
func Run(src, dst *Grid, cfg Config) (*Grid, error) {
	if src.I != dst.I || src.J != dst.J || src.K != dst.K {
		return nil, fmt.Errorf("stencil: src %dx%dx%d and dst %dx%dx%d differ",
			src.I, src.J, src.K, dst.I, dst.J, dst.K)
	}
	c := cfg.normalized(src)
	// Copy ghost layer once so the scratch grid has the same boundary.
	copyGhosts(src, dst)
	cur, nxt := src, dst
	for ts := 0; ts < c.TimeSteps; ts++ {
		sweep(cur, nxt, c)
		cur, nxt = nxt, cur
	}
	return cur, nil
}

// copyGhosts copies the full boundary shell from src to dst.
func copyGhosts(src, dst *Grid) {
	for k := 0; k < src.K+2; k++ {
		for j := 0; j < src.J+2; j++ {
			for i := 0; i < src.I+2; i++ {
				if k == 0 || k == src.K+1 || j == 0 || j == src.J+1 || i == 0 || i == src.I+1 {
					dst.Set(i, j, k, src.At(i, j, k))
				}
			}
		}
	}
}

// sweep applies one Jacobi update of the interior.
func sweep(src, dst *Grid, c Config) {
	if c.Threads <= 1 {
		sweepRange(src, dst, c, 1, src.K+1)
		return
	}
	// Parallel over k-slabs, mirroring OpenMP static scheduling of the
	// outer loop in PATUS-generated code.
	var wg sync.WaitGroup
	n := src.K
	t := c.Threads
	if t > n {
		t = n
	}
	for w := 0; w < t; w++ {
		k0 := 1 + w*n/t
		k1 := 1 + (w+1)*n/t
		wg.Add(1)
		go func(k0, k1 int) {
			defer wg.Done()
			sweepRange(src, dst, c, k0, k1)
		}(k0, k1)
	}
	wg.Wait()
}

// sweepRange updates interior points with k in [k0, k1), applying
// spatial blocking and inner-loop unrolling.
func sweepRange(src, dst *Grid, c Config, k0, k1 int) {
	c0, c1 := c.C0, c.C1
	ii := src.ii
	jj := src.jj
	s := src.data
	d := dst.data
	stepI := c.BI
	stepJ := c.BJ
	stepK := c.BK
	for kb := k0; kb < k1; kb += stepK {
		kEnd := min(kb+stepK, k1)
		for jb := 1; jb <= src.J; jb += stepJ {
			jEnd := min(jb+stepJ, src.J+1)
			for ib := 1; ib <= src.I; ib += stepI {
				iEnd := min(ib+stepI, src.I+1)
				for k := kb; k < kEnd; k++ {
					for j := jb; j < jEnd; j++ {
						row := (k*jj + j) * ii
						up := row + ii
						down := row - ii
						front := row + ii*jj
						back := row - ii*jj
						i := ib
						u := c.Unroll
						if u >= 2 {
							for ; i+u <= iEnd; i += u {
								for o := 0; o < u; o++ {
									p := i + o
									d[row+p] = c0*s[row+p] + c1*(s[row+p-1]+s[row+p+1]+
										s[down+p]+s[up+p]+s[back+p]+s[front+p])
								}
							}
						}
						for ; i < iEnd; i++ {
							d[row+i] = c0*s[row+i] + c1*(s[row+i-1]+s[row+i+1]+
								s[down+i]+s[up+i]+s[back+i]+s[front+i])
						}
					}
				}
			}
		}
	}
}

// Reference performs one naive, unblocked, serial sweep — the oracle the
// tests compare optimised variants against.
func Reference(src, dst *Grid, c0, c1 float64) error {
	if src.I != dst.I || src.J != dst.J || src.K != dst.K {
		return fmt.Errorf("stencil: mismatched grids")
	}
	if c0 == 0 && c1 == 0 {
		c0, c1 = 0.4, 0.1
	}
	for k := 1; k <= src.K; k++ {
		for j := 1; j <= src.J; j++ {
			for i := 1; i <= src.I; i++ {
				dst.Set(i, j, k, c0*src.At(i, j, k)+c1*(src.At(i-1, j, k)+src.At(i+1, j, k)+
					src.At(i, j-1, k)+src.At(i, j+1, k)+
					src.At(i, j, k-1)+src.At(i, j, k+1)))
			}
		}
	}
	return nil
}

// FlopsPerPoint is the floating-point work of one 7-point update:
// 6 additions inside the neighbour sum, 2 multiplications and 1 final
// addition.
const FlopsPerPoint = 9

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

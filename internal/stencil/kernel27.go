package stencil

import (
	"fmt"
	"sync"
)

// Run27 performs cfg.TimeSteps Jacobi sweeps of the 27-point 3-D
// stencil (Section II.A notes that "a 7-point or a 27-point stencil is
// often used for 3-D domains"): the centre point weighted by C0 and all
// 26 neighbours of the 3×3×3 cube weighted by C1. Blocking and
// threading follow Run; unrolling is not applied (the 27-point inner
// body is already wide).
func Run27(src, dst *Grid, cfg Config) (*Grid, error) {
	if src.I != dst.I || src.J != dst.J || src.K != dst.K {
		return nil, fmt.Errorf("stencil: src %dx%dx%d and dst %dx%dx%d differ",
			src.I, src.J, src.K, dst.I, dst.J, dst.K)
	}
	c := cfg.normalized(src)
	copyGhosts(src, dst)
	cur, nxt := src, dst
	for ts := 0; ts < c.TimeSteps; ts++ {
		sweep27(cur, nxt, c)
		cur, nxt = nxt, cur
	}
	return cur, nil
}

func sweep27(src, dst *Grid, c Config) {
	if c.Threads <= 1 {
		sweep27Range(src, dst, c, 1, src.K+1)
		return
	}
	var wg sync.WaitGroup
	n := src.K
	t := c.Threads
	if t > n {
		t = n
	}
	for w := 0; w < t; w++ {
		k0 := 1 + w*n/t
		k1 := 1 + (w+1)*n/t
		wg.Add(1)
		go func(k0, k1 int) {
			defer wg.Done()
			sweep27Range(src, dst, c, k0, k1)
		}(k0, k1)
	}
	wg.Wait()
}

func sweep27Range(src, dst *Grid, c Config, k0, k1 int) {
	c0, c1 := c.C0, c.C1
	ii, jj := src.ii, src.jj
	s := src.data
	d := dst.data
	for kb := k0; kb < k1; kb += c.BK {
		kEnd := min(kb+c.BK, k1)
		for jb := 1; jb <= src.J; jb += c.BJ {
			jEnd := min(jb+c.BJ, src.J+1)
			for ib := 1; ib <= src.I; ib += c.BI {
				iEnd := min(ib+c.BI, src.I+1)
				for k := kb; k < kEnd; k++ {
					for j := jb; j < jEnd; j++ {
						row := (k*jj + j) * ii
						for i := ib; i < iEnd; i++ {
							p := row + i
							sum := 0.0
							for dk := -1; dk <= 1; dk++ {
								for dj := -1; dj <= 1; dj++ {
									base := p + dk*ii*jj + dj*ii
									sum += s[base-1] + s[base] + s[base+1]
								}
							}
							// sum includes the centre; split weights.
							d[p] = c0*s[p] + c1*(sum-s[p])
						}
					}
				}
			}
		}
	}
}

// Reference27 is the naive 27-point oracle.
func Reference27(src, dst *Grid, c0, c1 float64) error {
	if src.I != dst.I || src.J != dst.J || src.K != dst.K {
		return fmt.Errorf("stencil: mismatched grids")
	}
	if c0 == 0 && c1 == 0 {
		c0, c1 = 0.4, 0.1
	}
	for k := 1; k <= src.K; k++ {
		for j := 1; j <= src.J; j++ {
			for i := 1; i <= src.I; i++ {
				sum := 0.0
				for dk := -1; dk <= 1; dk++ {
					for dj := -1; dj <= 1; dj++ {
						for di := -1; di <= 1; di++ {
							if di == 0 && dj == 0 && dk == 0 {
								continue
							}
							sum += src.At(i+di, j+dj, k+dk)
						}
					}
				}
				dst.Set(i, j, k, c0*src.At(i, j, k)+c1*sum)
			}
		}
	}
	return nil
}

// FlopsPerPoint27 is the floating-point work of one 27-point update.
const FlopsPerPoint27 = 28

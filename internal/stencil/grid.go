// Package stencil implements the 7-point 3-D Jacobi stencil the paper
// models (Section II.A), with the optimisations PATUS exposes: spatial
// loop blocking (bi, bj, bk), inner-loop unrolling (u in 0..8) and
// multi-threading (t). It is the runnable counterpart of the
// configuration space X = (I, J, K, bi, bj, bk, u, t); the performance
// simulator in internal/perfsim stands in for measuring these kernels on
// Blue Waters.
package stencil

import "fmt"

// Grid is a 3-D scalar field with a one-point ghost layer on every face,
// stored row-major with i fastest.
type Grid struct {
	// I, J, K are interior dimensions.
	I, J, K int
	// ii, jj are padded strides.
	ii, jj int
	data   []float64
}

// NewGrid allocates a zeroed grid with interior size I×J×K.
func NewGrid(i, j, k int) (*Grid, error) {
	if i <= 0 || j <= 0 || k <= 0 {
		return nil, fmt.Errorf("stencil: non-positive grid %dx%dx%d", i, j, k)
	}
	ii, jj, kk := i+2, j+2, k+2
	return &Grid{I: i, J: j, K: k, ii: ii, jj: jj, data: make([]float64, ii*jj*kk)}, nil
}

// idx maps padded coordinates (including ghosts: 0..dim+1) to the flat
// index.
func (g *Grid) idx(i, j, k int) int {
	return (k*g.jj+j)*g.ii + i
}

// At returns the value at padded coordinates.
func (g *Grid) At(i, j, k int) float64 { return g.data[g.idx(i, j, k)] }

// Set stores a value at padded coordinates.
func (g *Grid) Set(i, j, k int, v float64) { g.data[g.idx(i, j, k)] = v }

// Fill sets every point (ghosts included) to f(i, j, k) over padded
// coordinates.
func (g *Grid) Fill(f func(i, j, k int) float64) {
	for k := 0; k < g.K+2; k++ {
		for j := 0; j < g.J+2; j++ {
			for i := 0; i < g.I+2; i++ {
				g.Set(i, j, k, f(i, j, k))
			}
		}
	}
}

// Clone deep-copies the grid.
func (g *Grid) Clone() *Grid {
	out := *g
	out.data = make([]float64, len(g.data))
	copy(out.data, g.data)
	return &out
}

// MaxAbsDiff returns the largest absolute interior difference between
// two grids of equal shape.
func (g *Grid) MaxAbsDiff(o *Grid) (float64, error) {
	if g.I != o.I || g.J != o.J || g.K != o.K {
		return 0, fmt.Errorf("stencil: comparing %dx%dx%d grid with %dx%dx%d",
			g.I, g.J, g.K, o.I, o.J, o.K)
	}
	max := 0.0
	for k := 1; k <= g.K; k++ {
		for j := 1; j <= g.J; j++ {
			for i := 1; i <= g.I; i++ {
				d := g.At(i, j, k) - o.At(i, j, k)
				if d < 0 {
					d = -d
				}
				if d > max {
					max = d
				}
			}
		}
	}
	return max, nil
}

module lam

go 1.24.0

// Stencil autotuning: the use case that motivates the paper's intro —
// pick loop-block sizes for a stencil without measuring every
// configuration. A hybrid model trained on 2% of the space ranks all
// block-size candidates for a target grid; we compare its choice with
// the true optimum. Uses the context-first v2 API with SIGINT
// cancellation, like the cmds; the candidate scan scores through the
// allocation-free compiled batch path.
//
// Run with: go run ./examples/stencil-autotune
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"lam"
	"lam/internal/perfsim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	m := lam.BlueWaters()
	ds, err := lam.BuildDataset("stencil-blocking", m, 42)
	if err != nil {
		log.Fatal(err)
	}
	am, err := lam.AnalyticalModelFor("stencil-blocking", m)
	if err != nil {
		log.Fatal(err)
	}

	// Train on 2% of the space — the measurements an autotuner can
	// afford during a short calibration run.
	rng := rand.New(rand.NewSource(9))
	train, _, err := ds.SampleFraction(0.02, rng)
	if err != nil {
		log.Fatal(err)
	}
	hy, err := lam.TrainHybridCtx(ctx, train, am, lam.HybridConfig{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained hybrid model on %d of %d configurations\n\n", train.Len(), ds.Len())

	// Rank every block-size candidate for a target grid: build the
	// candidate matrix, score it in one cancellable batch.
	const J, K = 96, 112
	type cand struct {
		bj, bk    int
		predicted float64
		actual    float64
	}
	sim := &perfsim.StencilSim{Machine: m, Seed: 42}
	var cands []cand
	var batch [][]float64
	for _, bj := range blockCandidates(J) {
		for _, bk := range blockCandidates(K) {
			batch = append(batch, []float64{1, J, K, 1, float64(bj), float64(bk)})
			actual, err := sim.Measure(perfsim.StencilWorkload{
				I: 1, J: J, K: K, TI: 1, TJ: bj, TK: bk,
			})
			if err != nil {
				log.Fatal(err)
			}
			cands = append(cands, cand{bj: bj, bk: bk, actual: actual})
		}
	}
	preds, err := lam.HybridPredictor(hy).PredictBatch(ctx, batch)
	if err != nil {
		log.Fatal(err)
	}
	for i := range cands {
		cands[i].predicted = preds[i]
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].predicted < cands[b].predicted })

	fmt.Printf("top-5 predicted block sizes for grid 1x%dx%d:\n", J, K)
	fmt.Printf("  %4s %4s  %12s  %12s\n", "bj", "bk", "predicted(s)", "actual(s)")
	for _, c := range cands[:5] {
		fmt.Printf("  %4d %4d  %12.6f  %12.6f\n", c.bj, c.bk, c.predicted, c.actual)
	}

	best := cands[0]
	trueBest := cands[0]
	for _, c := range cands {
		if c.actual < trueBest.actual {
			trueBest = c
		}
	}
	fmt.Printf("\nmodel's pick : bj=%d bk=%d -> %.6fs\n", best.bj, best.bk, best.actual)
	fmt.Printf("true optimum : bj=%d bk=%d -> %.6fs\n", trueBest.bj, trueBest.bk, trueBest.actual)
	fmt.Printf("slowdown of the model's pick vs optimum: %.1f%%\n",
		100*(best.actual/trueBest.actual-1))
}

func blockCandidates(d int) []int {
	var out []int
	for b := 1; b < d; b *= 2 {
		out = append(out, b)
	}
	return append(out, d)
}

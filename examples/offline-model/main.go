// Offline model lifecycle: Section VI stresses that "the model is
// constructed once offline but used many times. It is not necessary to
// gather a training dataset or rebuild the model for every prediction."
// This example trains a hybrid model, serialises it to disk, reloads it
// in a fresh "deployment" step, and verifies the predictions survive the
// round trip bit-for-bit — the reloaded artifact decodes straight into
// the compiled flat node tables the serving layer runs on. Uses the
// context-first v2 API with SIGINT cancellation, like the cmds.
//
// Run with: go run ./examples/offline-model
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"lam"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	m := lam.BlueWaters()
	ds, err := lam.BuildDataset("fmm", m, 42)
	if err != nil {
		log.Fatal(err)
	}
	am, err := lam.AnalyticalModelFor("fmm", m)
	if err != nil {
		log.Fatal(err)
	}

	// --- Offline phase: train once, save the artefact. ---
	rng := rand.New(rand.NewSource(2))
	train, test, err := ds.SampleFraction(0.15, rng)
	if err != nil {
		log.Fatal(err)
	}
	hy, err := lam.TrainHybridCtx(ctx, train, am, lam.HybridConfig{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(os.TempDir(), "lam-fmm-model.json")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := hy.Save(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("offline: trained on %d samples, saved model to %s (%d KB)\n",
		train.Len(), path, info.Size()/1024)

	// --- Deployment phase: load and predict, no training data needed.
	// Only the analytical model (a function of the machine spec) is
	// reattached. ---
	g, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := lam.LoadHybrid(g, am)
	g.Close()
	if err != nil {
		log.Fatal(err)
	}

	mape, err := loaded.MAPECtx(ctx, test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment: held-out MAPE of the reloaded model: %.1f%%\n", mape)

	// The round trip must be exact; both models serve through the
	// unified v2 Predictor interface.
	orig, dep := lam.HybridPredictor(hy), lam.HybridPredictor(loaded)
	for i := 0; i < 5; i++ {
		a, err := orig.Predict(ctx, test.X[i])
		if err != nil {
			log.Fatal(err)
		}
		b, err := dep.Predict(ctx, test.X[i])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  x=%v  original=%.6gs  reloaded=%.6gs  (equal: %v)\n",
			test.X[i], a, b, a == b)
	}
	if err := os.Remove(path); err != nil {
		log.Fatal(err)
	}
}

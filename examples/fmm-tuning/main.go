// FMM parameter tuning: Section VII.B's use case. The FMM's runtime is
// governed by the particles-per-leaf q (P2P grows with q, M2L shrinks)
// and the expansion order k (accuracy vs k⁶ cost). A hybrid model
// trained on a modest sample picks (q, t) for a required order, and we
// check its choice against the simulated truth. Uses the context-first
// v2 API with SIGINT cancellation, like the cmds; the (q, t) scan
// scores through the cancellable batch path.
//
// Run with: go run ./examples/fmm-tuning
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"syscall"

	"lam"
	"lam/internal/perfsim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	m := lam.BlueWaters()
	ds, err := lam.BuildDataset("fmm", m, 42)
	if err != nil {
		log.Fatal(err)
	}
	am, err := lam.AnalyticalModelFor("fmm", m)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(5))
	train, test, err := ds.SampleFraction(0.15, rng)
	if err != nil {
		log.Fatal(err)
	}
	hy, err := lam.TrainHybridCtx(ctx, train, am, lam.HybridConfig{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	mape, err := hy.MAPECtx(ctx, test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hybrid model trained on %d/%d FMM configurations (held-out MAPE %.1f%%)\n\n",
		train.Len(), ds.Len(), mape)

	// Scenario: N = 16384 particles, accuracy requires order k >= 6,
	// up to 16 threads available. Choose (q, t) minimising predicted
	// time at the cheapest acceptable order.
	const N, k = 16384, 6
	sim := &perfsim.FMMSim{Machine: m, Seed: 42}
	qs := []int{8, 16, 32, 64, 128, 256, 512}
	type choice struct {
		q, t int
	}
	var grid []choice
	var batch [][]float64
	for _, q := range qs {
		for t := 1; t <= 16; t++ {
			grid = append(grid, choice{q, t})
			batch = append(batch, []float64{float64(t), N, float64(q), k})
		}
	}
	preds, err := lam.HybridPredictor(hy).PredictBatch(ctx, batch)
	if err != nil {
		log.Fatal(err)
	}
	besti := 0
	for i, p := range preds {
		if p < preds[besti] {
			besti = i
		}
	}
	best := grid[besti]
	actual, err := sim.Measure(perfsim.FMMWorkload{N: N, Q: best.q, K: k, Threads: best.t})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model's pick for N=%d, k=%d: q=%d, t=%d (predicted %.4fs, actual %.4fs)\n",
		N, k, best.q, best.t, preds[besti], actual)

	// Exhaustive truth for comparison.
	bestActual, bq, bt := -1.0, 0, 0
	for _, c := range grid {
		a, err := sim.Measure(perfsim.FMMWorkload{N: N, Q: c.q, K: k, Threads: c.t})
		if err != nil {
			log.Fatal(err)
		}
		if bestActual < 0 || a < bestActual {
			bestActual, bq, bt = a, c.q, c.t
		}
	}
	fmt.Printf("true optimum:                q=%d, t=%d (%.4fs)\n", bq, bt, bestActual)
	fmt.Printf("slowdown of the model's pick vs optimum: %.1f%%\n", 100*(actual/bestActual-1))
}

// Quickstart: train the paper's hybrid model on 2% of a stencil
// dataset and compare it against pure ML and the raw analytical model.
// Uses the context-first v2 API throughout: ^C cancels the training
// and batch predictions promptly, like the cmds.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"syscall"

	"lam"
)

func main() {
	// ^C / SIGTERM cancel every lam call below at the next unit
	// boundary (tree fit, prediction block).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// 1. The simulated platform: the paper's Blue Waters XE6 node.
	m := lam.BlueWaters()

	// 2. A ground-truth dataset: every stencil grid configuration of
	//    Fig. 5, "measured" by the deterministic performance simulator.
	ds, err := lam.BuildDataset("stencil-grid", m, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d configurations, features %v\n", ds.Len(), ds.FeatureNames)

	// 3. Split: the hybrid model needs only a tiny training set.
	rng := rand.New(rand.NewSource(1))
	train, test, err := ds.SampleFraction(0.02, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training on %d samples (2%%), testing on %d\n", train.Len(), test.Len())

	// 4. The paper's analytical model for this workload, untuned.
	am, err := lam.AnalyticalModelFor("stencil-grid", m)
	if err != nil {
		log.Fatal(err)
	}
	amMAPE, err := lam.AnalyticalMAPECtx(ctx, test, am)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Train the hybrid (stacked analytical + extra trees) model.
	hy, err := lam.TrainHybridCtx(ctx, train, am, lam.HybridConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	hyMAPE, err := hy.MAPECtx(ctx, test)
	if err != nil {
		log.Fatal(err)
	}

	// 6. Baseline: pure extra trees on the same tiny training set,
	//    scored through the unified v2 Predictor interface.
	et := lam.NewExtraTrees(100, 7)
	if err := lam.FitCtx(ctx, et, train.X, train.Y); err != nil {
		log.Fatal(err)
	}
	etPred, err := lam.MLPredictor(et).PredictBatch(ctx, test.X)
	if err != nil {
		log.Fatal(err)
	}
	etMAPE := lam.MAPE(test.Y, etPred)

	fmt.Printf("\nheld-out MAPE:\n")
	fmt.Printf("  analytical model alone : %6.2f%%\n", amMAPE)
	fmt.Printf("  pure extra trees       : %6.2f%%\n", etMAPE)
	fmt.Printf("  hybrid model           : %6.2f%%\n", hyMAPE)

	// 7. Predict a configuration that was never measured.
	x := []float64{192, 160, 224}
	p, err := lam.HybridPredictor(hy).Predict(ctx, x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npredicted time for grid %v: %.4fs\n", x, p)
}

// Hardware change: the paper's closing claim is that the hybrid model
// "requires small training datasets ... making it suitable for hardware
// and workload changes". We simulate a machine swap: a model served
// predictions on Blue Waters; the application moves to a Xeon node; how
// much re-measurement does each approach need to become accurate again?
// Uses the context-first v2 API with SIGINT cancellation, like the cmds.
//
// Run with: go run ./examples/hardware-change
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"syscall"

	"lam"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	old, err := lam.MachineByName("bluewaters")
	if err != nil {
		log.Fatal(err)
	}
	next, err := lam.MachineByName("xeon")
	if err != nil {
		log.Fatal(err)
	}

	// The new machine's ground truth (what we'd measure after the swap).
	dsNew, err := lam.BuildDataset("stencil-blocking", next, 99)
	if err != nil {
		log.Fatal(err)
	}
	// The analytical model is re-parameterised for the new hardware for
	// free — its inputs are cache sizes and bandwidths from the spec
	// sheet. That is the hybrid approach's advantage here.
	amNew, err := lam.AnalyticalModelFor("stencil-blocking", next)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("machine change: %s -> %s\n", old.Name, next.Name)
	fmt.Printf("re-measurement budget sweep on the new machine (%d configs total):\n\n", dsNew.Len())
	fmt.Printf("  %8s  %10s  %14s  %12s\n", "budget", "samples", "extra trees", "hybrid")

	for _, frac := range []float64{0.01, 0.02, 0.04} {
		rng := rand.New(rand.NewSource(17))
		train, test, err := dsNew.SampleFraction(frac, rng)
		if err != nil {
			log.Fatal(err)
		}

		et := lam.NewExtraTrees(100, 3)
		if err := lam.FitCtx(ctx, et, train.X, train.Y); err != nil {
			log.Fatal(err)
		}
		etPred, err := lam.MLPredictor(et).PredictBatch(ctx, test.X)
		if err != nil {
			log.Fatal(err)
		}
		etMAPE := lam.MAPE(test.Y, etPred)

		hy, err := lam.TrainHybridCtx(ctx, train, amNew, lam.HybridConfig{Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		hyMAPE, err := hy.MAPECtx(ctx, test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %7.1f%%  %10d  %13.1f%%  %11.1f%%\n",
			frac*100, train.Len(), etMAPE, hyMAPE)
	}

	fmt.Println("\nthe hybrid model recovers accuracy from a fraction of the")
	fmt.Println("re-measurements because the analytical component is rebuilt from")
	fmt.Println("the new machine's spec sheet, not from data.")
}

// Package lam ("Learning with Analytical Models") is the public facade
// of this reproduction of Ibeid, Meng, Dobon, Olson & Gropp, "Learning
// with Analytical Models" (IPDPSW 2019, arXiv:1810.11772): a hybrid
// performance-prediction framework that stacks a machine-learning
// regressor on top of a closed-form analytical model so that accurate
// predictions need only a small training dataset.
//
// The facade wires together the building blocks in internal/…:
//
//   - machine descriptions (Blue Waters XE6 and friends),
//   - ground-truth performance simulators for the paper's two
//     applications (7-point 3-D stencil, FMM),
//   - the paper's analytical models,
//   - a from-scratch ML suite (trees, forests, extra trees, bagging,
//     stacking),
//   - the hybrid model itself, and
//   - the experiment harness that regenerates every figure.
//
// See examples/ for runnable walk-throughs and cmd/lam-bench for the
// figure regeneration tool.
//
// The context-first v2 surface lives in v2.go: the unified Predictor
// interface, typed sentinel errors (ErrCancelled, ErrNotFitted, …),
// cancellable …Ctx variants of every long-running call, and the
// versioned model Registry behind the cmd/lam-serve HTTP service. The
// free functions below without a context are kept for compatibility;
// new code should prefer the Ctx variants.
package lam

import (
	"fmt"
	"io"
	"sort"

	"lam/internal/dataset"
	"lam/internal/experiments"
	"lam/internal/hybrid"
	"lam/internal/machine"
	"lam/internal/ml"
	"lam/internal/parallel"
)

// Dataset is the tabular sample container: named features + response
// (execution time in seconds).
type Dataset = dataset.Dataset

// Machine describes the simulated hardware platform.
type Machine = machine.Machine

// AnalyticalModel scores a feature vector with a closed-form model.
type AnalyticalModel = hybrid.AnalyticalModel

// AnalyticalFunc adapts a function to AnalyticalModel.
type AnalyticalFunc = hybrid.AnalyticalFunc

// HybridModel is a trained analytical+ML hybrid predictor.
type HybridModel = hybrid.Model

// HybridConfig tunes hybrid training; the zero value is the paper's
// setup (stacking, extra trees, no aggregation).
type HybridConfig = hybrid.Config

// Regressor is the common ML estimator interface.
type Regressor = ml.Regressor

// Report is one regenerated figure.
type Report = experiments.Report

// FigureOptions configures figure regeneration.
type FigureOptions = experiments.Options

// NewDataset returns an empty dataset with the given feature names.
func NewDataset(featureNames ...string) *Dataset {
	return dataset.New(featureNames...)
}

// SetWorkers sets the process-wide default worker count used by every
// parallel hot path — ensemble fitting, batch prediction,
// cross-validation, grid search and the figure sweeps — wherever a
// per-call Workers knob is zero. Passing n <= 0 restores the
// GOMAXPROCS default. All results are bit-identical for every worker
// count: each parallel unit derives its randomness from (seed, unit
// index) before fan-out and writes its output by index.
func SetWorkers(n int) { parallel.SetDefaultWorkers(n) }

// Workers reports the current process-wide default worker count.
func Workers() int { return parallel.DefaultWorkers() }

// Machines lists the built-in machine presets by name. "bluewaters" is
// the paper's platform.
func Machines() []string {
	ms := machine.Presets()
	names := make([]string, 0, len(ms))
	for n := range ms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// MachineByName returns a built-in machine preset; unknown names wrap
// ErrUnknownMachine.
func MachineByName(name string) (*Machine, error) {
	if m, ok := machine.Presets()[name]; ok {
		return m, nil
	}
	return nil, fmt.Errorf("lam: %w: %q (have %v)", ErrUnknownMachine, name, Machines())
}

// BlueWaters returns the paper's experimental platform.
func BlueWaters() *Machine { return machine.BlueWatersXE6() }

// Workloads lists the canonical datasets: "stencil-grid" (Fig. 5),
// "stencil-blocking" (Figs. 3A/6), "stencil-threads" (Fig. 7), "fmm"
// (Figs. 3B/8) and "stencil-full" (the complete 8-feature PATUS vector
// of Section III.B, an extension workload).
func Workloads() []string {
	return []string{"stencil-grid", "stencil-blocking", "stencil-threads", "stencil-full", "fmm"}
}

// BuildDataset generates one of the canonical datasets on a machine,
// with a deterministic measurement-noise seed.
func BuildDataset(workload string, m *Machine, seed uint64) (*Dataset, error) {
	return experiments.DatasetByName(workload, m, seed)
}

// AnalyticalModelFor returns the paper's (untuned) analytical model
// matched to a canonical dataset's feature layout.
func AnalyticalModelFor(workload string, m *Machine) (AnalyticalModel, error) {
	return experiments.AMByDataset(workload, m)
}

// TrainHybrid trains the paper's hybrid model on a training dataset.
//
// Deprecated: use TrainHybridCtx, which supports cancellation; this
// wrapper is equivalent to TrainHybridCtx(context.Background(), …).
func TrainHybrid(train *Dataset, am AnalyticalModel, cfg HybridConfig) (*HybridModel, error) {
	return hybrid.Train(train, am, cfg)
}

// NewExtraTrees returns the paper's best pure-ML estimator: a
// standardising pipeline feeding an extra-trees ensemble.
func NewExtraTrees(nTrees int, seed int64) Regressor {
	return &ml.Pipeline{Model: ml.NewExtraTrees(nTrees, seed)}
}

// NewRandomForest returns a standardising random-forest pipeline.
func NewRandomForest(nTrees int, seed int64) Regressor {
	return &ml.Pipeline{Model: ml.NewRandomForest(nTrees, seed)}
}

// NewDecisionTree returns a standardising single-CART pipeline.
func NewDecisionTree(seed int64) Regressor {
	return &ml.Pipeline{Model: ml.NewDecisionTree(ml.TreeConfig{Seed: seed})}
}

// MAPE returns the mean absolute percentage error (percent), the
// paper's headline metric.
func MAPE(yTrue, yPred []float64) float64 { return ml.MAPE(yTrue, yPred) }

// PredictBatch applies a fitted regressor to every row of X.
//
// Deprecated: use PredictBatchCtx, which supports cancellation and
// returns typed errors instead of panicking on unfitted models.
func PredictBatch(r Regressor, X [][]float64) []float64 { return ml.PredictBatch(r, X) }

// Figure regenerates one of the paper's figures: "fig3a", "fig3b",
// "fig5", "fig6", "fig7", "fig8" (see EXPERIMENTS.md §Figures).
//
// Deprecated: use FigureCtx, which supports cancellation; this wrapper
// is equivalent to FigureCtx(context.Background(), …).
func Figure(id string, opts FigureOptions) (*Report, error) {
	return experiments.Run(id, opts)
}

// FigureIDs lists the reproducible figures in paper order.
func FigureIDs() []string { return experiments.AllFigureIDs() }

// Figures regenerates several figures concurrently on the worker pool
// and returns the reports in input order; the output matches len(ids)
// sequential Figure calls exactly.
//
// Deprecated: use FiguresCtx, which supports cancellation; this
// wrapper is equivalent to FiguresCtx(context.Background(), …).
func Figures(ids []string, opts FigureOptions) ([]*Report, error) {
	return experiments.RunMany(ids, opts)
}

// AnalyticalMAPE scores an analytical model alone against a dataset.
func AnalyticalMAPE(ds *Dataset, am AnalyticalModel) (float64, error) {
	return hybrid.AnalyticalMAPE(ds, am)
}

// LoadHybrid restores a hybrid model saved with (*HybridModel).Save,
// reattaching the analytical model (rebuilt from the machine
// description, exactly as at training time).
func LoadHybrid(r io.Reader, am AnalyticalModel) (*HybridModel, error) {
	return hybrid.Load(r, am)
}

// SaveRegressor serialises a fitted ML regressor (trees, forests,
// linear regression, k-NN, gradient boosting, pipelines) to JSON.
func SaveRegressor(w io.Writer, m Regressor) error { return ml.SaveModel(w, m) }

// LoadRegressor restores a regressor saved with SaveRegressor.
func LoadRegressor(r io.Reader) (Regressor, error) { return ml.LoadModel(r) }

// NoiseSensitivity runs the extension experiment sweeping simulator
// noise levels (see EXPERIMENTS.md §Extensions).
//
// Deprecated: use NoiseSensitivityCtx, which supports cancellation.
func NoiseSensitivity(opts FigureOptions, noiseLevels []float64) (*Report, error) {
	return experiments.NoiseSensitivity(opts, noiseLevels)
}

// HardwareTransfer runs the extension experiment measuring accuracy per
// re-measurement budget after a machine change (see EXPERIMENTS.md
// §Extensions).
//
// Deprecated: use HardwareTransferCtx, which supports cancellation.
func HardwareTransfer(opts FigureOptions, target *Machine, budgets []float64) (*Report, error) {
	return experiments.HardwareTransfer(opts, target, budgets)
}

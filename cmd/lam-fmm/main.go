// Command lam-fmm runs the real fast multipole method on this machine:
// uniform random particles in a cube (the paper's benchmark), FMM
// evaluation at the requested order and leaf capacity, accuracy check
// against direct O(N²) summation, and wall-clock timing of both.
//
// Usage:
//
//	lam-fmm -n 10000 -q 64 -k 5 -t 8
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"lam/internal/fmm"
)

func main() {
	n := flag.Int("n", 10000, "number of particles")
	q := flag.Int("q", 64, "particles per leaf cell")
	k := flag.Int("k", 5, "expansion order")
	t := flag.Int("t", 0, "threads (0 = all cores)")
	theta := flag.Float64("theta", 0, "multipole acceptance criterion (0 = 0.5)")
	seed := flag.Uint64("seed", 1, "particle distribution seed")
	skipDirect := flag.Bool("skip-direct", false, "skip the O(N²) accuracy baseline")
	flag.Parse()

	ps := fmm.UniformCube(*n, *seed)
	run := make([]fmm.Particle, len(ps))
	copy(run, ps)

	start := time.Now()
	st, err := fmm.Evaluate(run, fmm.Config{Order: *k, LeafCap: *q, Theta: *theta, Threads: *t})
	if err != nil {
		fatal(err)
	}
	fmmTime := time.Since(start)
	fmt.Printf("FMM: N=%d q=%d k=%d  ->  %v\n", *n, *q, *k, fmmTime)
	fmt.Printf("tree: %d cells, %d leaves, depth %d\n", st.Cells, st.Leaves, st.TreeDepth)
	fmt.Printf("traversal: %d M2L pairs, %d P2P pairs (%d particle interactions)\n",
		st.M2LPairs, st.P2PPairs, st.P2PInteractions)

	if *skipDirect {
		return
	}
	ref := make([]fmm.Particle, len(ps))
	copy(ref, ps)
	start = time.Now()
	fmm.Direct(ref, *t)
	directTime := time.Since(start)

	num, den := 0.0, 0.0
	for i := range run {
		d := run[i].Phi - ref[i].Phi
		num += d * d
		den += ref[i].Phi * ref[i].Phi
	}
	fmt.Printf("direct: %v  (FMM speedup %.2fx)\n", directTime,
		directTime.Seconds()/fmmTime.Seconds())
	fmt.Printf("relative L2 error vs direct: %.3g\n", math.Sqrt(num/den))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lam-fmm:", err)
	os.Exit(1)
}

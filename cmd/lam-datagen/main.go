// Command lam-datagen generates the canonical per-figure datasets from
// the ground-truth performance simulators and writes them as CSV
// (features + final "time_s" column), for use with lam-predict or
// external tooling.
//
// Usage:
//
//	lam-datagen -workload stencil-grid|stencil-blocking|stencil-threads|fmm
//	            [-machine bluewaters|xeon|edge] [-seed N] [-o out.csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"lam"
)

func main() {
	workload := flag.String("workload", "stencil-grid", "dataset to generate: stencil-grid, stencil-blocking, stencil-threads, fmm")
	machineName := flag.String("machine", "bluewaters", "machine preset")
	seed := flag.Uint64("seed", 42, "simulator noise seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	m, err := lam.MachineByName(*machineName)
	if err != nil {
		fatal(err)
	}
	ds, err := lam.BuildDataset(*workload, m, *seed)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := ds.WriteCSV(w); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "lam-datagen: wrote %d rows of %s (%s)\n", ds.Len(), *workload, m.Name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lam-datagen:", err)
	os.Exit(1)
}

// Command lam-model inspects and converts model artifacts in a
// registry.
//
// Usage:
//
//	lam-model info     -registry ./models -name grid-hybrid [-version 3] [-json]
//	lam-model convert  -registry ./models -name grid-hybrid [-version 3] -to lamb1
//	lam-model convert  -registry ./models -name grid-hybrid -all -to jsonv1
//	lam-model quantize -registry ./models -name grid-hybrid [-version 3] [-bits 8]
//
// info decodes one stored version and prints its artifact format,
// payload kind, estimator structure, tree/node counts, node layout and
// quantization mode, encoded size and (for lamb1) the CRC32-C trailer
// checksum, alongside the registry metadata. -json emits the same as
// one JSON object for scripting.
//
// convert re-encodes a version in place in the named format (lamb1 or
// jsonv1) — predictions are bit-identical across formats, so this is
// safe on live registries: the new artifact is renamed into place
// before the old one is removed, and a reader mid-convert still loads a
// consistent version. Converting to the format a version already uses
// is a no-op. -all converts every version of the name.
//
// quantize loads a tree-based version, quantizes its node table to
// -bits (16 or 8) wide integer thresholds (~3.5-4x smaller, approximate
// within one quantization step per split — see the README), and
// publishes the result as a NEW version of the same name. The exact
// source version is never modified or replaced.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lam"
	"lam/internal/artifact"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "info":
		runInfo(os.Args[2:])
	case "convert":
		runConvert(os.Args[2:])
	case "quantize":
		runQuantize(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "lam-model: unknown subcommand %q\n\n", os.Args[1])
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  lam-model info     -registry DIR -name NAME [-version N] [-json]
  lam-model convert  -registry DIR -name NAME [-version N | -all] -to FORMAT
  lam-model quantize -registry DIR -name NAME [-version N] [-bits 16|8]

Formats: %s (default for new saves), %s (legacy JSON).
-version 0 (the default) means the latest version.
quantize publishes the quantized model as a NEW version of NAME (the
exact source version is left untouched — quantization is approximate).
`, lam.FormatLAMB1, lam.FormatJSONV1)
	os.Exit(2)
}

// openArgs are the flags every subcommand shares.
func openArgs(fs *flag.FlagSet) (regDir, name *string, version *int) {
	regDir = fs.String("registry", "", "registry directory (required)")
	name = fs.String("name", "", "registry model name (required)")
	version = fs.Int("version", 0, "version number (0 = latest)")
	return
}

func openRegistry(regDir, name string) *lam.Registry {
	if regDir == "" || name == "" {
		fatal(fmt.Errorf("-registry and -name are required"))
	}
	reg, err := lam.OpenRegistry(regDir)
	if err != nil {
		fatal(err)
	}
	return reg
}

func runInfo(args []string) {
	fs := flag.NewFlagSet("lam-model info", flag.ExitOnError)
	regDir, name, version := openArgs(fs)
	asJSON := fs.Bool("json", false, "emit one JSON object instead of text")
	fs.Parse(args)

	reg := openRegistry(*regDir, *name)
	info, meta, err := reg.ArtifactInfo(*name, *version)
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		out := struct {
			Info artifact.Info `json:"artifact"`
			Meta lam.ModelMeta `json:"meta"`
		}{info, meta}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("%s v%d\n", meta.Name, meta.Version)
	fmt.Printf("  format:     %s\n", info.Format)
	fmt.Printf("  kind:       %s\n", info.Kind)
	fmt.Printf("  estimator:  %s\n", info.Estimator)
	if info.Trees > 0 || info.Nodes > 0 {
		fmt.Printf("  trees:      %d\n", info.Trees)
		fmt.Printf("  nodes:      %d\n", info.Nodes)
	}
	if info.NodeLayout != "" {
		fmt.Printf("  layout:     %s\n", info.NodeLayout)
	}
	if info.Quant != "" {
		fmt.Printf("  quant:      %s\n", info.Quant)
	}
	fmt.Printf("  size:       %d bytes\n", info.SizeBytes)
	if info.CRC32 != 0 {
		fmt.Printf("  crc32c:     %08x\n", info.CRC32)
	}
	if meta.Workload != "" {
		fmt.Printf("  workload:   %s\n", meta.Workload)
	}
	if meta.Machine != "" {
		fmt.Printf("  machine:    %s\n", meta.Machine)
	}
	if meta.TrainSize > 0 {
		fmt.Printf("  train size: %d\n", meta.TrainSize)
	}
	if meta.TestMAPE > 0 {
		fmt.Printf("  test MAPE:  %.2f%%\n", meta.TestMAPE)
	}
	fmt.Printf("  created:    %s\n", meta.CreatedAt.Format("2006-01-02 15:04:05 MST"))
}

func runConvert(args []string) {
	fs := flag.NewFlagSet("lam-model convert", flag.ExitOnError)
	regDir, name, version := openArgs(fs)
	to := fs.String("to", "", fmt.Sprintf("target format: %s or %s (required)", lam.FormatLAMB1, lam.FormatJSONV1))
	all := fs.Bool("all", false, "convert every version of the name")
	fs.Parse(args)

	if *to == "" {
		fatal(fmt.Errorf("-to is required"))
	}
	reg := openRegistry(*regDir, *name)
	versions := []int{*version}
	if *all {
		if *version != 0 {
			fatal(fmt.Errorf("-all and -version are mutually exclusive"))
		}
		list, err := reg.List()
		if err != nil {
			fatal(err)
		}
		versions = versions[:0]
		for _, m := range list {
			if m.Name == *name {
				versions = append(versions, m.Version)
			}
		}
		if len(versions) == 0 {
			fatal(fmt.Errorf("no versions of %q in %s", *name, *regDir))
		}
	}
	for _, v := range versions {
		meta, err := reg.Convert(*name, v, *to)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s v%d: %s\n", meta.Name, meta.Version, meta.Format)
	}
}

func runQuantize(args []string) {
	fs := flag.NewFlagSet("lam-model quantize", flag.ExitOnError)
	regDir, name, version := openArgs(fs)
	bits := fs.Int("bits", 16, "quantized threshold width: 16 or 8")
	fs.Parse(args)

	reg := openRegistry(*regDir, *name)
	src, err := reg.Load(*name, *version)
	if err != nil {
		fatal(err)
	}
	// Carry the source metadata; save allocates the next version and
	// stamps kind/format/timestamp itself. The source version is never
	// touched: quantized predictions approximate the exact ones, so the
	// result is always published as a new version.
	meta := src.Meta
	var out lam.ModelMeta
	if hy := src.Hybrid(); hy != nil {
		qm, err := hy.Quantize(*bits)
		if err != nil {
			fatal(err)
		}
		out, err = reg.SaveHybrid(qm, meta)
		if err != nil {
			fatal(err)
		}
	} else {
		q, err := lam.Quantize(src.Regressor(), *bits)
		if err != nil {
			fatal(err)
		}
		out, err = reg.SaveRegressor(q, meta)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("%s v%d: quant%d (from v%d; recorded test MAPE is the exact model's)\n",
		out.Name, out.Version, *bits, src.Meta.Version)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lam-model:", err)
	os.Exit(1)
}

// Command lam-replay replays a workload dataset as a ground-truth
// observation stream against a running lam-serve -online instance —
// the end-to-end demonstration of the online adaptation plane.
//
// Usage:
//
//	lam-replay -model grid-hybrid [-addr http://127.0.0.1:8080]
//	          [-workload stencil-blocking] [-machine xeon]
//	          [-batch 32] [-max 0] [-repeat 1] [-seed 1]
//	          [-log-format text]
//
// It builds the named workload's dataset on the named machine preset
// (pick a *different* machine than the model was trained on to inject
// the paper's hardware-transfer drift), shuffles it, and POSTs it to
// /observe in batches. Each response carries the model's drift status,
// which is printed as the stream progresses: watch the windowed MAPE
// climb, the detector trip, the background retrain publish a new
// version, and the served version hot-swap — then the post-swap window
// MAPE settle back down. The exit summary reports the MAPE before and
// after adaptation.
//
// Against a lam-serve -rollout instance the swap is progressive: the
// responses then carry the rollout status too, and every transition is
// narrated — the retrained candidate entering shadow, clearing each
// canary stage with its evaluation-window quantiles, and finally being
// promoted (or rolled back and quarantined). A full stage walk plus
// the post-promotion window often needs more observations than one
// dataset pass holds; -repeat N replays the shuffled stream up to N
// times.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"lam/internal/experiments"
	"lam/internal/machine"
	"lam/internal/online"
	"lam/internal/rollout"
	"lam/internal/telemetry"
)

// lg is the process logger (stderr diagnostics; the per-batch progress
// stream stays on stdout), replaced in main once -log-format is parsed.
var lg = slog.Default()

type observeResponse struct {
	Model    string          `json:"model"`
	Version  int             `json:"version"`
	Ingested int             `json:"ingested"`
	Drift    online.Status   `json:"drift"`
	Rollout  *rollout.Status `json:"rollout"`
	Error    string          `json:"error"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "lam-serve base URL")
	model := flag.String("model", "", "registry model name to stream observations at (required)")
	workload := flag.String("workload", "stencil-blocking", "canonical dataset to replay (stencil-grid, stencil-blocking, stencil-threads, stencil-full, fmm)")
	machineName := flag.String("machine", "xeon", "machine preset generating the observed runtimes (bluewaters, xeon, edge)")
	batch := flag.Int("batch", 32, "observations per /observe request")
	maxObs := flag.Int("max", 0, "stop after this many observations (0 = the whole dataset)")
	repeat := flag.Int("repeat", 1, "replay the shuffled stream up to this many times (a rollout stage walk can need more than one pass)")
	seed := flag.Int64("seed", 1, "simulator + shuffle seed")
	logFormat := flag.String("log-format", "text", "structured-log output format: text or json")
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		fatal(err)
	}
	lg = logger.With("component", "lam-replay")

	if *model == "" {
		fatal(fmt.Errorf("-model is required"))
	}
	m, ok := machine.Presets()[*machineName]
	if !ok {
		fatal(fmt.Errorf("unknown machine %q", *machineName))
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	lg.Info("building observations", "workload", *workload, "machine", m.Name)
	ds, err := experiments.DatasetByName(*workload, m, uint64(*seed))
	if err != nil {
		fatal(err)
	}
	// Shuffle so the stream is i.i.d. rather than sweeping the
	// configuration space in generation order.
	perm := rand.New(rand.NewSource(*seed)).Perm(ds.Len())
	passes := *repeat
	if passes < 1 {
		passes = 1
	}
	total := ds.Len() * passes
	if *maxObs > 0 && *maxObs < total {
		total = *maxObs
	}
	lg.Info("streaming observations", "sending", total, "dataset", ds.Len(), "passes", passes, "addr", *addr, "batch", *batch)

	startVersion := 0
	preSwap, postSwap := 0.0, 0.0
	swapped := false
	lastTransition := ""
	sent := 0
	for sent < total {
		if err := ctx.Err(); err != nil {
			lg.Warn("interrupted")
			os.Exit(130)
		}
		n := *batch
		if sent+n > total {
			n = total - sent
		}
		X := make([][]float64, n)
		Y := make([]float64, n)
		for i := 0; i < n; i++ {
			j := perm[(sent+i)%ds.Len()]
			X[i], Y[i] = ds.X[j], ds.Y[j]
		}
		resp, err := postObserve(ctx, *addr, *model, X, Y)
		if err != nil {
			fatal(err)
		}
		sent += n
		if startVersion == 0 {
			startVersion = resp.Version
		}
		state := "ok"
		switch {
		case resp.Drift.Retraining:
			state = "RETRAINING"
		case resp.Drift.Tripped:
			state = "DRIFT"
		}
		fmt.Printf("lam-replay: %5d/%d sent  v%d  window %3d  MAPE %7.2f%%  (threshold %.2f%%)  %s\n",
			sent, total, resp.Version, resp.Drift.Window.Count, resp.Drift.Window.MAPE,
			resp.Drift.ThresholdMAPE, state)
		if r := resp.Rollout; r != nil {
			if r.LastTransition != "" && r.LastTransition != lastTransition {
				lastTransition = r.LastTransition
				fmt.Printf("lam-replay: *** rollout: %s\n", r.LastTransition)
			}
			if r.Phase != "idle" {
				where := r.Phase
				if r.Phase == "canary" {
					where = fmt.Sprintf("canary stage %d (%.0f%% traffic)", r.Stage, 100*r.Fraction)
				}
				fmt.Printf("lam-replay:     rollout v%d vs v%d  %s  cand p50/p90 %.1f/%.1f (%d)  inc %.1f/%.1f (%d, need %d)\n",
					r.Candidate, r.Incumbent, where,
					r.CandidateWindow.P50, r.CandidateWindow.P90, r.CandidateWindow.Count,
					r.IncumbentWindow.P50, r.IncumbentWindow.P90, r.IncumbentWindow.Count,
					r.NeedSamples)
			}
		}
		if !swapped && resp.Version > startVersion {
			swapped = true
			preSwap = resp.Drift.PreSwapMAPE
			fmt.Printf("lam-replay: *** hot swap: v%d -> v%d (pre-swap window MAPE %.2f%%, retrained test MAPE %.2f%%)\n",
				startVersion, resp.Version, preSwap,
				resp.Drift.BaselineMAPE)
		}
		if swapped {
			postSwap = resp.Drift.Window.MAPE
			// Enough post-swap samples to call the after-MAPE settled.
			if resp.Drift.Window.Count >= resp.Drift.Window.Capacity/2 {
				break
			}
		}
	}
	fmt.Println("lam-replay: done")
	if swapped {
		fmt.Printf("lam-replay: windowed MAPE before adaptation %.2f%%, after %.2f%%\n", preSwap, postSwap)
	} else {
		fmt.Printf("lam-replay: no retrain published within %d observations (stream may match the training distribution)\n", sent)
	}
}

func postObserve(ctx context.Context, addr, model string, X [][]float64, Y []float64) (*observeResponse, error) {
	body, err := json.Marshal(map[string]any{"model": model, "batch": X, "y_batch": Y})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/observe", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	var out observeResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("decoding /observe response %q: %w", raw, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/observe: status %d: %s", resp.StatusCode, out.Error)
	}
	return &out, nil
}

func fatal(err error) {
	lg.Error("fatal", "err", err)
	os.Exit(1)
}

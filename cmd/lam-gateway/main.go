// Command lam-gateway fronts a fleet of lam-serve replicas: one HTTP
// endpoint that multiplies serving capacity while keeping each
// replica's micro-batch coalescer fed with dense same-model traffic.
//
// Usage:
//
//	lam-gateway -backends http://127.0.0.1:9001,http://127.0.0.1:9002 \
//	            [-addr :8080] [-route consistent|random] \
//	            [-attempts 2] [-bound-factor 1.25] \
//	            [-probe-interval 500ms] [-probe-timeout 2s] \
//	            [-eject-after 3] [-readmit-after 2] \
//	            [-pprof localhost:6061] \
//	            [-log-format text] [-trace-slow 0]
//
// -pprof exposes net/http/pprof on a separate listener (kept off the
// proxy address) for profiling the gateway itself under load.
//
// Routing: POST /predict and /observe are routed by consistent hashing
// on the model name — each model has a primary replica and a
// deterministic spill-over order through the rest of the fleet, with a
// bounded-load check (-bound-factor) that moves requests off a replica
// whose in-flight count runs past the fleet mean. -route random
// replaces this with uniform-random selection: the measurement
// baseline for what affinity buys (see BENCH_PR7.json).
//
// Health: every backend's GET /readyz is probed each -probe-interval;
// -eject-after consecutive failures (probes and request-level
// connection failures both count) eject it, probes continue while
// ejected, and -readmit-after consecutive probe successes re-admit it.
//
// Spill-over: a connection failure or 429 moves the request to the
// next ring candidate within a total budget of -attempts; 429
// Retry-After values are respected as routing cooldowns and forwarded
// when every attempt sheds. /observe is retried only when the request
// provably never reached a backend, so observations are never ingested
// twice.
//
// Endpoints:
//
//	GET  /healthz  — fleet summary (503 once no backend is live)
//	GET  /models   — union of every live backend's /models
//	GET  /metrics  — Prometheus text exposition
//	GET  /trace/recent — the last 256 finished request traces
//	POST /predict  — proxied, byte-identical to the direct replica call
//	POST /observe  — proxied (same consistent routing, so a model's
//	                 observation window stays on one replica)
//	GET/POST /models/{name}/rollout — proxied to the model's home
//	                 replica: progressive-delivery state and operator
//	                 actions (see lam-serve -rollout)
//
// SIGINT/SIGTERM drain gracefully, like lam-serve.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the DefaultServeMux the -pprof listener serves
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lam/internal/gateway"
	"lam/internal/telemetry"
)

// lg is the process logger, replaced in main once -log-format is
// parsed.
var lg = slog.Default()

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	backends := flag.String("backends", "", "comma-separated lam-serve base URLs (required)")
	route := flag.String("route", "consistent", "routing policy: consistent (per-model hash ring + bounded-load spill) or random (baseline)")
	attempts := flag.Int("attempts", 2, "total backend attempts per request (first try + retries)")
	boundFactor := flag.Float64("bound-factor", 1.25, "bounded-load spill threshold as a multiple of the fleet-mean in-flight count (<= 1 disables)")
	probeInterval := flag.Duration("probe-interval", 500*time.Millisecond, "active /readyz probe interval per backend")
	probeTimeout := flag.Duration("probe-timeout", 2*time.Second, "one probe's round-trip timeout")
	ejectAfter := flag.Int("eject-after", 3, "consecutive failures (probe or request) that eject a backend")
	readmitAfter := flag.Int("readmit-after", 2, "consecutive probe successes that re-admit an ejected backend")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
	seed := flag.Int64("seed", 1, "random-route mode: PRNG seed")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6061; empty disables)")
	logFormat := flag.String("log-format", "text", "structured-log output format: text or json")
	traceSlow := flag.Duration("trace-slow", 0, "log the span tree of any proxied request slower than this (0 disables)")
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		fatal(err)
	}
	lg = logger.With("component", "lam-gateway")

	if *pprofAddr != "" {
		go func(addr string) {
			lg.Info("pprof listening", "url", "http://"+addr+"/debug/pprof/")
			if err := http.ListenAndServe(addr, nil); err != nil {
				lg.Error("pprof listener failed", "err", err)
			}
		}(*pprofAddr)
	}

	if *backends == "" {
		fatal(fmt.Errorf("-backends is required"))
	}
	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if *route != "consistent" && *route != "random" {
		fatal(fmt.Errorf("-route must be consistent or random, got %q", *route))
	}

	g, err := gateway.New(urls, gateway.Config{
		Health: gateway.HealthConfig{
			Interval:     *probeInterval,
			Timeout:      *probeTimeout,
			EjectAfter:   *ejectAfter,
			ReadmitAfter: *readmitAfter,
		},
		BoundFactor: *boundFactor,
		MaxAttempts: *attempts,
		Random:      *route == "random",
		Seed:        *seed,
		Logger:      lg,
		TraceSlow:   *traceSlow,
	})
	if err != nil {
		fatal(err)
	}
	defer g.Close()
	lg.Info("routing configured", "policy", *route, "backends", len(urls))
	for _, u := range urls {
		lg.Info("backend", "url", u)
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: g.Handler(),
		// Same slow-client protections as lam-serve; proxied
		// predictions are bounded by the replicas, not a write timeout.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		lg.Info("listening", "addr", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills hard
		lg.Info("shutting down", "drain", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fatal(fmt.Errorf("shutdown: %w", err))
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

func fatal(err error) {
	lg.Error("fatal", "err", err)
	os.Exit(1)
}

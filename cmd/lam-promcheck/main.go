// Command lam-promcheck validates Prometheus text expositions: it
// fetches each URL (or reads stdin), runs the strict in-repo parser
// over the document, and exits nonzero on the first violation — the CI
// gate that keeps lam-serve's and lam-gateway's /metrics endpoints
// honest without an external Prometheus toolchain.
//
// Usage:
//
//	lam-promcheck http://127.0.0.1:8080/metrics [more URLs...]
//	lam-promcheck -            # validate a document piped on stdin
//
// The parser enforces the exposition format strictly — HELP/TYPE
// ordering, unique families, contiguous and duplicate-free series,
// sorted labels, histogram bucket invariants (ascending le, monotone
// cumulative counts, +Inf terminal, _sum/_count consistency) — not
// just "scrapes without error". Flags:
//
//	-require name   assert the named metric family is present and has
//	                at least one sample (repeatable)
//	-quiet          print nothing on success
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"lam/internal/telemetry"
)

// requireList collects repeated -require flags.
type requireList []string

func (r *requireList) String() string     { return strings.Join(*r, ",") }
func (r *requireList) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	var require requireList
	flag.Var(&require, "require", "metric family that must be present with at least one sample (repeatable)")
	quiet := flag.Bool("quiet", false, "print nothing on success")
	timeout := flag.Duration("timeout", 10*time.Second, "per-URL fetch timeout")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "lam-promcheck: at least one URL (or - for stdin) is required")
		os.Exit(2)
	}
	client := &http.Client{Timeout: *timeout}
	failed := false
	for _, target := range flag.Args() {
		doc, err := fetch(client, target)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lam-promcheck: %s: %v\n", target, err)
			failed = true
			continue
		}
		exp, err := telemetry.ParseExposition(doc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lam-promcheck: %s: invalid exposition: %v\n", target, err)
			failed = true
			continue
		}
		ok := true
		for _, name := range require {
			fam := exp.Family(name)
			if fam == nil {
				fmt.Fprintf(os.Stderr, "lam-promcheck: %s: required family %s is absent\n", target, name)
				ok, failed = false, true
			} else if len(fam.Samples) == 0 {
				fmt.Fprintf(os.Stderr, "lam-promcheck: %s: required family %s has no samples\n", target, name)
				ok, failed = false, true
			}
		}
		if ok && !*quiet {
			samples := 0
			for _, f := range exp.Families {
				samples += len(f.Samples)
			}
			fmt.Printf("lam-promcheck: %s: ok (%d families, %d samples)\n", target, len(exp.Families), samples)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// fetch retrieves one exposition document: an HTTP URL or "-" (stdin).
func fetch(client *http.Client, target string) (string, error) {
	if target == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	resp, err := client.Get(target)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		return "", fmt.Errorf("unexpected Content-Type %q (want text/plain exposition)", ct)
	}
	return string(b), nil
}

// Command lam-bench regenerates the paper's evaluation figures
// (Figs. 3A, 3B, 5, 6, 7, 8) on the simulated platform and prints the
// MAPE-vs-training-size series each figure plots.
//
// Usage:
//
//	lam-bench [-fig all|fig3a|fig3b|fig5|fig6|fig7|fig8]
//	          [-machine bluewaters|xeon|edge] [-seed N] [-reps N] [-trees N]
//	          [-workers N] [-layout implicit-left] [-json]
//
// -workers bounds the worker pool used for ensemble fitting and the
// per-figure sweeps (0 = GOMAXPROCS, 1 = fully sequential); results
// are bit-identical for every value.
//
// -layout sets the process-default tree-traversal layout every
// compiled ensemble adopts (see the README's layout table). The exact
// layouts — implicit-left, standard, level-order — leave every MAPE
// series bit-identical and only move wall-clock time; the quantized
// layouts (quant16, quant8) perturb predictions within the
// quantization bound and exist here to measure that trade.
//
// -json replaces the text tables with one machine-readable JSON
// document on stdout: run parameters plus, per benchmark, the
// wall-clock ns/op of the regeneration (figures run sequentially in
// this mode so the timings are attributable) and every series' MAPE
// values. BENCH_PR3.json in the repository root is a committed
// snapshot of this output tracking the performance trajectory.
//
// SIGINT/SIGTERM cancel the sweep context: the run stops promptly at
// the next trial boundary instead of dying mid-write, and exits with
// status 130. See EXPERIMENTS.md for the figure catalogue.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"lam"
)

// jsonReport is the machine-readable -json output: run parameters and
// one benchmark entry per regenerated figure.
type jsonReport struct {
	Schema     string          `json:"schema"`
	Machine    string          `json:"machine"`
	Seed       int64           `json:"seed"`
	Reps       int             `json:"reps"`
	Trees      int             `json:"trees"`
	Workers    int             `json:"workers"`
	Layout     string          `json:"layout,omitempty"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Benchmarks []jsonBenchmark `json:"benchmarks"`
}

type jsonBenchmark struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	// NsPerOp is the wall-clock nanoseconds of one full regeneration
	// of this figure (its sweep still uses the worker pool).
	NsPerOp     int64        `json:"ns_per_op"`
	DatasetSize int          `json:"dataset_size"`
	Series      []jsonSeries `json:"series"`
}

type jsonSeries struct {
	Label      string    `json:"label"`
	Fractions  []float64 `json:"fractions"`
	MeanMAPE   []float64 `json:"mean_mape"`
	StdMAPE    []float64 `json:"std_mape"`
	MedianMAPE []float64 `json:"median_mape"`
	Reps       int       `json:"reps"`
}

func toJSONBenchmark(id string, r *lam.Report, elapsed time.Duration) jsonBenchmark {
	b := jsonBenchmark{ID: id, Title: r.Title, NsPerOp: elapsed.Nanoseconds(), DatasetSize: r.DatasetSize}
	for _, s := range r.Series {
		b.Series = append(b.Series, jsonSeries{
			Label: s.Label, Fractions: s.Fractions,
			MeanMAPE: s.MeanMAPE, StdMAPE: s.StdMAPE, MedianMAPE: s.MedianMAPE,
			Reps: s.Reps,
		})
	}
	return b
}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (all, fig3a, fig3b, fig5, fig6, fig7, fig8, ext-noise, ext-transfer)")
	csvDir := flag.String("csv", "", "also write each figure's series as CSV into this directory")
	machineName := flag.String("machine", "bluewaters", "machine preset (bluewaters, xeon, edge)")
	seed := flag.Int64("seed", 42, "deterministic seed for simulator noise and sampling")
	reps := flag.Int("reps", 7, "training-set redraws per fraction")
	trees := flag.Int("trees", 100, "ensemble size for tree models")
	workers := flag.Int("workers", 0, "worker pool size for parallel fitting and sweeps (0 = GOMAXPROCS, 1 = sequential)")
	jsonOut := flag.Bool("json", false, "emit one machine-readable JSON document (per-benchmark ns/op + MAPE series) instead of text tables")
	layoutFlag := flag.String("layout", "", "traversal layout for every compiled ensemble: default, implicit-left (branchless), standard, level-order, quant16, quant8 (exact layouts leave MAPE bit-identical)")
	flag.Parse()

	// ^C / SIGTERM cancel the context; the sweeps notice at the next
	// trial boundary. A second signal kills the process the hard way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	lam.SetWorkers(*workers)
	if *layoutFlag != "" {
		layout, err := lam.ParseLayout(*layoutFlag)
		if err != nil {
			fatal(err)
		}
		lam.SetDefaultLayout(layout)
	}
	m, err := lam.MachineByName(*machineName)
	if err != nil {
		fatal(err)
	}
	opts := lam.FigureOptions{Machine: m, Seed: *seed, Reps: *reps, Trees: *trees, Workers: *workers}

	ids := []string{*fig}
	if *fig == "all" {
		ids = lam.FigureIDs()
	}

	if *jsonOut {
		// Figures run one after another so each benchmark's wall time
		// is attributable to it; the sweep inside each figure still
		// fans out on the worker pool.
		rep := jsonReport{
			Schema: "lam-bench/v1", Machine: *machineName, Seed: *seed,
			Reps: *reps, Trees: *trees, Workers: lam.Workers(),
			Layout:     lam.DefaultLayout().String(),
			GoMaxProcs: runtime.GOMAXPROCS(0),
		}
		for _, id := range ids {
			start := time.Now()
			r, err := runOne(ctx, id, opts)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", id, err))
			}
			rep.Benchmarks = append(rep.Benchmarks, toJSONBenchmark(id, r, time.Since(start)))
			writeCSV(*csvDir, id, r)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("machine: %s  seed: %d  reps: %d  trees: %d  workers: %d\n\n",
		m.Name, *seed, *reps, *trees, lam.Workers())

	// Regenerate every requested figure (concurrently when more than
	// one), then render in input order.
	reports := make([]*lam.Report, len(ids))
	if len(ids) > 1 {
		if reports, err = lam.FiguresCtx(ctx, ids, opts); err != nil {
			fatal(err)
		}
	} else {
		r, err := runOne(ctx, ids[0], opts)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", ids[0], err))
		}
		reports[0] = r
	}
	for i, id := range ids {
		r := reports[i]
		if err := r.Render(os.Stdout); err != nil {
			fatal(err)
		}
		writeCSV(*csvDir, id, r)
	}
}

// writeCSV writes one figure's series into dir (no-op when dir is
// empty); used by both the text and -json output modes.
func writeCSV(dir, id string, r *lam.Report) {
	if dir == "" {
		return
	}
	path := dir + "/" + id + ".csv"
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := r.WriteSeriesCSV(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

// runOne regenerates one benchmark by id, including the extension
// experiments the figure runner does not know about.
func runOne(ctx context.Context, id string, opts lam.FigureOptions) (*lam.Report, error) {
	switch id {
	case "ext-noise":
		return lam.NoiseSensitivityCtx(ctx, opts, nil)
	case "ext-transfer":
		return lam.HardwareTransferCtx(ctx, opts, nil, nil)
	default:
		return lam.FigureCtx(ctx, id, opts)
	}
}

func fatal(err error) {
	if errors.Is(err, lam.ErrCancelled) {
		fmt.Fprintln(os.Stderr, "lam-bench: interrupted, no figures written:", err)
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "lam-bench:", err)
	os.Exit(1)
}

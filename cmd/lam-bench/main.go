// Command lam-bench regenerates the paper's evaluation figures
// (Figs. 3A, 3B, 5, 6, 7, 8) on the simulated platform and prints the
// MAPE-vs-training-size series each figure plots.
//
// Usage:
//
//	lam-bench [-fig all|fig3a|fig3b|fig5|fig6|fig7|fig8]
//	          [-machine bluewaters|xeon|edge] [-seed N] [-reps N] [-trees N]
//	          [-workers N]
//
// -workers bounds the worker pool used for ensemble fitting and the
// per-figure sweeps (0 = GOMAXPROCS, 1 = fully sequential); results
// are bit-identical for every value.
//
// SIGINT/SIGTERM cancel the sweep context: the run stops promptly at
// the next trial boundary instead of dying mid-write, and exits with
// status 130. See EXPERIMENTS.md for the figure catalogue.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"lam"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (all, fig3a, fig3b, fig5, fig6, fig7, fig8, ext-noise, ext-transfer)")
	csvDir := flag.String("csv", "", "also write each figure's series as CSV into this directory")
	machineName := flag.String("machine", "bluewaters", "machine preset (bluewaters, xeon, edge)")
	seed := flag.Int64("seed", 42, "deterministic seed for simulator noise and sampling")
	reps := flag.Int("reps", 7, "training-set redraws per fraction")
	trees := flag.Int("trees", 100, "ensemble size for tree models")
	workers := flag.Int("workers", 0, "worker pool size for parallel fitting and sweeps (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	// ^C / SIGTERM cancel the context; the sweeps notice at the next
	// trial boundary. A second signal kills the process the hard way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	lam.SetWorkers(*workers)
	m, err := lam.MachineByName(*machineName)
	if err != nil {
		fatal(err)
	}
	opts := lam.FigureOptions{Machine: m, Seed: *seed, Reps: *reps, Trees: *trees, Workers: *workers}

	ids := []string{*fig}
	if *fig == "all" {
		ids = lam.FigureIDs()
	}
	fmt.Printf("machine: %s  seed: %d  reps: %d  trees: %d  workers: %d\n\n",
		m.Name, *seed, *reps, *trees, lam.Workers())

	// Regenerate every requested figure (concurrently when more than
	// one), then render in input order.
	reports := make([]*lam.Report, len(ids))
	if len(ids) > 1 {
		if reports, err = lam.FiguresCtx(ctx, ids, opts); err != nil {
			fatal(err)
		}
	} else {
		var r *lam.Report
		switch ids[0] {
		case "ext-noise":
			r, err = lam.NoiseSensitivityCtx(ctx, opts, nil)
		case "ext-transfer":
			r, err = lam.HardwareTransferCtx(ctx, opts, nil, nil)
		default:
			r, err = lam.FigureCtx(ctx, ids[0], opts)
		}
		if err != nil {
			fatal(fmt.Errorf("%s: %w", ids[0], err))
		}
		reports[0] = r
	}
	for i, id := range ids {
		r := reports[i]
		if err := r.Render(os.Stdout); err != nil {
			fatal(err)
		}
		if *csvDir != "" {
			path := *csvDir + "/" + id + ".csv"
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := r.WriteSeriesCSV(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
}

func fatal(err error) {
	if errors.Is(err, lam.ErrCancelled) {
		fmt.Fprintln(os.Stderr, "lam-bench: interrupted, no figures written:", err)
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "lam-bench:", err)
	os.Exit(1)
}

// Command lam-loadgen is an HTTP load generator for lam-serve: it
// drives POST /predict with a configurable mix of single-row and batch
// requests and reports the latency distribution, achieved throughput
// and shed rate — the measurement half of the serving layer's capacity
// model (see the README's "Capacity planning & tuning" section).
//
// Usage:
//
//	lam-loadgen -url http://127.0.0.1:8080 -model grid-hybrid \
//	            (-x 240,240,160 | -data grid.csv) \
//	            [-mode closed|open] [-concurrency 32] [-qps 5000] \
//	            [-duration 10s] [-batch 64] [-batch-fraction 0.25] \
//	            [-targets url1,url2] [-id serve-coalesced] [-json]
//	            [-slowest 5]
//
// Fleet modes: -model accepts a comma-separated list — requests cycle
// through the names, which is how a gateway's per-model routing is
// exercised. -targets accepts a comma-separated list of base URLs and
// spreads load across them round-robin WITHOUT a gateway (direct fleet
// mode): comparing a -targets run against the same load through
// lam-gateway isolates the gateway's own overhead. Per-target achieved
// QPS is reported either way.
//
// Two load models:
//
//   - closed loop (default): -concurrency workers each issue the next
//     request as soon as the previous one completes, so offered load
//     adapts to the server — the classic saturation measurement.
//   - open loop: arrivals fire at a fixed -qps regardless of
//     completions (up to -concurrency outstanding; arrivals past that
//     are counted as local drops, not sent), so overload behaviour —
//     queueing, shedding, tail latency — is visible instead of being
//     absorbed by the client.
//
// Feature vectors come from -x (one comma-separated row, reused) or
// -data (a lam-datagen CSV whose rows are cycled round-robin). With
// -batch-fraction f and -batch N, a deterministic interleave sends
// fraction f of requests as N-row batches and the rest as singles.
//
// Every request carries a freshly minted X-Lam-Trace ID, and the
// report lists the IDs of the -slowest N slowest successful requests —
// paste one into the server's GET /trace/recent (or grep its
// -trace-slow log) to see exactly where that request spent its time.
//
// Responses with status 429 count as shed (the server's admission
// control working as designed), any other non-200 as an error. -json
// emits a machine-readable report whose benchmarks array follows the
// BENCH_PR<N>.json trajectory convention (see EXPERIMENTS.md);
// BENCH_PR5.json is a committed snapshot of two such runs.
//
// SIGINT/SIGTERM stop the run early and report what was measured.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"lam/internal/dataset"
	"lam/internal/telemetry"
)

// slowestN is the -slowest flag: how many of the slowest successful
// requests to report trace IDs for.
var slowestN = 5

// slowReq pairs one successful request's latency with the trace ID it
// was sent under.
type slowReq struct {
	lat time.Duration
	id  string
}

type result struct {
	latencies []time.Duration // successful requests only
	slow      []slowReq       // the slowestN slowest successful requests
	requests  uint64
	rows      uint64
	shed      uint64
	errors    uint64
}

// recordSlow keeps r.slow holding the slowestN largest latencies seen.
func (r *result) recordSlow(lat time.Duration, id string) {
	if slowestN <= 0 {
		return
	}
	if len(r.slow) < slowestN {
		r.slow = append(r.slow, slowReq{lat, id})
		return
	}
	min := 0
	for i := 1; i < len(r.slow); i++ {
		if r.slow[i].lat < r.slow[min].lat {
			min = i
		}
	}
	if lat > r.slow[min].lat {
		r.slow[min] = slowReq{lat, id}
	}
}

type jsonReport struct {
	Schema        string          `json:"schema"`
	URL           string          `json:"url"`
	Model         string          `json:"model"`
	Mode          string          `json:"mode"`
	Concurrency   int             `json:"concurrency"`
	TargetQPS     float64         `json:"target_qps"`
	DurationS     float64         `json:"duration_s"`
	Batch         int             `json:"batch"`
	BatchFraction float64         `json:"batch_fraction"`
	Benchmarks    []jsonBenchmark `json:"benchmarks"`
	// PerTarget breaks the run down by target URL in direct fleet mode
	// (-targets with more than one URL).
	PerTarget []jsonTarget `json:"per_target,omitempty"`
	// Slowest lists the slowest successful requests with the trace IDs
	// they were sent under (look them up at GET /trace/recent).
	Slowest []jsonSlow `json:"slowest,omitempty"`
}

type jsonSlow struct {
	Ns      int64  `json:"ns"`
	TraceID string `json:"trace_id"`
}

type jsonTarget struct {
	URL         string  `json:"url"`
	Requests    uint64  `json:"requests"`
	Rows        uint64  `json:"rows"`
	AchievedQPS float64 `json:"achieved_qps"`
	Shed        uint64  `json:"shed"`
	Errors      uint64  `json:"errors"`
}

type jsonBenchmark struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	// NsPerOp is the mean latency of a successful request, for
	// comparability with the BENCH_PR<N>.json trajectory.
	NsPerOp       int64   `json:"ns_per_op"`
	Requests      uint64  `json:"requests"`
	Rows          uint64  `json:"rows"`
	AchievedQPS   float64 `json:"achieved_qps"`
	AchievedRowsS float64 `json:"achieved_rows_per_s"`
	P50Ns         int64   `json:"p50_ns"`
	P95Ns         int64   `json:"p95_ns"`
	P99Ns         int64   `json:"p99_ns"`
	MaxNs         int64   `json:"max_ns"`
	Shed          uint64  `json:"shed"`
	ShedRate      float64 `json:"shed_rate"`
	Errors        uint64  `json:"errors"`
	LocalDrops    uint64  `json:"local_drops"`
}

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "lam-serve or lam-gateway base URL")
	targets := flag.String("targets", "", "comma-separated base URLs for direct fleet mode (round-robin, no gateway); overrides -url")
	model := flag.String("model", "", "registry model name(s) to score, comma-separated (required; requests cycle through the list)")
	xFlag := flag.String("x", "", "comma-separated feature row to send (alternative to -data)")
	dataFile := flag.String("data", "", "lam-datagen CSV whose feature rows are cycled (alternative to -x)")
	mode := flag.String("mode", "closed", "load model: closed (workers back-to-back) or open (fixed arrival rate)")
	concurrency := flag.Int("concurrency", 32, "closed: worker count; open: max outstanding requests")
	qps := flag.Float64("qps", 1000, "open mode: target arrival rate, requests/s")
	duration := flag.Duration("duration", 10*time.Second, "how long to generate load")
	batch := flag.Int("batch", 64, "rows per batch request (used for the -batch-fraction share)")
	batchFraction := flag.Float64("batch-fraction", 0, "fraction of requests sent as -batch-row batches; the rest are single rows")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request client timeout (bounds how long a stalled server can hang the run)")
	id := flag.String("id", "loadgen", "benchmark id for the -json report")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report on stdout")
	slowest := flag.Int("slowest", 5, "report the trace IDs of this many slowest successful requests (0 disables)")
	flag.Parse()
	slowestN = *slowest

	if *model == "" {
		fatal(fmt.Errorf("-model is required"))
	}
	if *mode != "closed" && *mode != "open" {
		fatal(fmt.Errorf("-mode must be closed or open, got %q", *mode))
	}
	if *concurrency < 1 {
		fatal(fmt.Errorf("-concurrency must be >= 1"))
	}
	if *batchFraction < 0 || *batchFraction > 1 {
		fatal(fmt.Errorf("-batch-fraction must be in [0, 1]"))
	}
	if *batch < 1 {
		fatal(fmt.Errorf("-batch must be >= 1, got %d", *batch))
	}
	models := splitList(*model)
	baseURLs := []string{*url}
	if *targets != "" {
		baseURLs = splitList(*targets)
	}
	if len(baseURLs) == 0 {
		fatal(fmt.Errorf("-targets must name at least one URL"))
	}
	endpoints := make([]string, len(baseURLs))
	for i, u := range baseURLs {
		endpoints[i] = strings.TrimRight(u, "/") + "/predict"
	}
	if len(endpoints) > *concurrency {
		fatal(fmt.Errorf("-concurrency %d is below the %d targets: some targets would get no load", *concurrency, len(endpoints)))
	}
	rows, err := loadRows(*xFlag, *dataFile)
	if err != nil {
		fatal(err)
	}
	bodies := prepareBodies(models, rows, *batch, *batchFraction)

	client := &http.Client{
		// Without a timeout, one stalled server request would hang a
		// closed-loop worker (and the whole run) forever: ctx is only
		// checked between requests.
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        *concurrency * 2,
			MaxIdleConnsPerHost: *concurrency * 2,
		},
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, *duration)
	defer cancel()

	fmt.Fprintf(os.Stderr, "lam-loadgen: %s loop against %s, model %s, %d conns", *mode, strings.Join(endpoints, " "), *model, *concurrency)
	if *mode == "open" {
		fmt.Fprintf(os.Stderr, ", %.0f req/s target", *qps)
	}
	if *batchFraction > 0 {
		fmt.Fprintf(os.Stderr, ", %.0f%% %d-row batches", *batchFraction*100, *batch)
	}
	fmt.Fprintf(os.Stderr, ", %s\n", *duration)

	var localDrops uint64
	start := time.Now()
	var perTarget []result
	if *mode == "closed" {
		perTarget = runClosed(ctx, client, endpoints, bodies, *concurrency)
	} else {
		perTarget = runOpen(ctx, client, endpoints, bodies, *concurrency, *qps, &localDrops)
	}
	elapsed := time.Since(start)
	res := merge(perTarget)

	report(*jsonOut, *id, strings.Join(baseURLs, ","), *model, *mode, *concurrency, *qps, *batch, *batchFraction, elapsed, res, perTarget, baseURLs, localDrops)
	if res.errors > 0 {
		os.Exit(1)
	}
}

// splitList splits a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// loadRows resolves the feature-row source: a literal -x row or a CSV.
func loadRows(xFlag, dataFile string) ([][]float64, error) {
	switch {
	case xFlag != "" && dataFile != "":
		return nil, fmt.Errorf("-x and -data are mutually exclusive")
	case xFlag != "":
		parts := strings.Split(xFlag, ",")
		row := make([]float64, len(parts))
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("parsing -x element %d: %w", i, err)
			}
			row[i] = v
		}
		return [][]float64{row}, nil
	case dataFile != "":
		f, err := os.Open(dataFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		ds, err := dataset.ReadCSV(f)
		if err != nil {
			return nil, err
		}
		if ds.Len() == 0 {
			return nil, fmt.Errorf("%s holds no rows", dataFile)
		}
		return ds.X, nil
	default:
		return nil, fmt.Errorf("one of -x or -data is required")
	}
}

// body is one pre-marshalled request.
type body struct {
	payload []byte
	rows    uint64
}

// prepareBodies pre-marshals a cycle of request bodies implementing
// the single/batch mix: out of every run of requests, a deterministic
// interleave makes fraction f of them batches, and consecutive bodies
// cycle through the -model list. Pre-marshalling keeps the generator's
// own JSON cost out of the measured loop.
func prepareBodies(models []string, rows [][]float64, batchSize int, fraction float64) []body {
	if len(models) == 0 {
		fatal(fmt.Errorf("-model named no models"))
	}
	// The cycle is long enough to realise the fraction exactly for
	// common values, to rotate through -data rows, and to cover every
	// model in the list.
	n := len(rows)
	if n < 100 {
		n = 100
	}
	if r := n % len(models); r != 0 {
		n += len(models) - r // every model appears equally often
	}
	bodies := make([]body, 0, n)
	next := 0 // next -data row to consume
	take := func() []float64 {
		r := rows[next%len(rows)]
		next++
		return r
	}
	batches := 0
	for i := 0; i < n; i++ {
		model := models[i%len(models)]
		// Emit a batch whenever the realised batch count falls behind
		// the target fraction — an error-diffusion interleave.
		if fraction > 0 && float64(batches) < fraction*float64(i+1) {
			X := make([][]float64, batchSize)
			for j := range X {
				X[j] = take()
			}
			payload, err := json.Marshal(map[string]any{"model": model, "batch": X})
			if err != nil {
				fatal(err)
			}
			bodies = append(bodies, body{payload: payload, rows: uint64(batchSize)})
			batches++
			continue
		}
		payload, err := json.Marshal(map[string]any{"model": model, "x": take()})
		if err != nil {
			fatal(err)
		}
		bodies = append(bodies, body{payload: payload, rows: 1})
	}
	return bodies
}

// shoot issues one request — under a freshly minted trace ID, so a
// slow request can be looked up in the server's trace ring — and
// records it into r.
func shoot(client *http.Client, endpoint string, b body, r *result) {
	id := telemetry.NewTraceID().String()
	req, err := http.NewRequest(http.MethodPost, endpoint, bytes.NewReader(b.payload))
	if err != nil {
		r.requests++
		r.errors++
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(telemetry.TraceHeader, id)
	t0 := time.Now()
	resp, err := client.Do(req)
	lat := time.Since(t0)
	r.requests++
	if err != nil {
		r.errors++
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		r.rows += b.rows
		r.latencies = append(r.latencies, lat)
		r.recordSlow(lat, id)
	case resp.StatusCode == http.StatusTooManyRequests:
		r.shed++
	default:
		r.errors++
	}
}

// runClosed is the closed loop: workers chain requests back-to-back.
// Workers are assigned to targets round-robin, and the returned slice
// holds one merged result per target.
func runClosed(ctx context.Context, client *http.Client, endpoints []string, bodies []body, workers int) []result {
	results := make([]result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := &results[w]
			endpoint := endpoints[w%len(endpoints)]
			for i := w; ctx.Err() == nil; i += workers {
				shoot(client, endpoint, bodies[i%len(bodies)], r)
			}
		}(w)
	}
	wg.Wait()
	perTarget := make([]result, len(endpoints))
	for w := range results {
		mergeInto(&perTarget[w%len(endpoints)], results[w])
	}
	return perTarget
}

// runOpen is the open loop: a pacer fires arrivals at the target rate;
// each arrival runs in its own goroutine, bounded by maxOutstanding.
// Arrivals cycle through the targets round-robin; the returned slice
// holds one merged result per target.
func runOpen(ctx context.Context, client *http.Client, endpoints []string, bodies []body, maxOutstanding int, qps float64, localDrops *uint64) []result {
	if qps <= 0 {
		fatal(fmt.Errorf("-qps must be > 0 in open mode"))
	}
	interval := time.Duration(float64(time.Second) / qps)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	sem := make(chan struct{}, maxOutstanding)
	var mu sync.Mutex
	total := make([]result, len(endpoints))
	var wg sync.WaitGroup
	var dropped atomic.Uint64
	fire := func(i int) {
		select {
		case sem <- struct{}{}:
		default:
			// The client's outstanding budget is exhausted: an open-loop
			// arrival does not wait, it is dropped client-side.
			dropped.Add(1)
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			t := i % len(endpoints)
			var r result
			shoot(client, endpoints[t], bodies[i%len(bodies)], &r)
			mu.Lock()
			mergeInto(&total[t], r)
			mu.Unlock()
		}()
	}
	// A fixed arrival schedule with catch-up: when the pacer goroutine
	// wakes late (coarse timers, busy host), it fires every arrival
	// that is already due as a burst, so the offered rate tracks the
	// target instead of silently degrading to whatever one
	// sleep-per-arrival can sustain.
	start := time.Now()
	for i := 0; ; {
		due := start.Add(time.Duration(i) * interval)
		if wait := time.Until(due); wait > 0 {
			select {
			case <-ctx.Done():
				wg.Wait()
				*localDrops = dropped.Load()
				return total
			case <-time.After(wait):
			}
		} else if ctx.Err() != nil {
			wg.Wait()
			*localDrops = dropped.Load()
			return total
		}
		for !start.Add(time.Duration(i) * interval).After(time.Now()) {
			fire(i)
			i++
		}
	}
}

func merge(results []result) result {
	var total result
	for _, r := range results {
		mergeInto(&total, r)
	}
	return total
}

func mergeInto(total *result, r result) {
	total.latencies = append(total.latencies, r.latencies...)
	for _, sr := range r.slow {
		total.recordSlow(sr.lat, sr.id)
	}
	total.requests += r.requests
	total.rows += r.rows
	total.shed += r.shed
	total.errors += r.errors
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func report(jsonOut bool, id, url, model, mode string, concurrency int, qps float64, batch int, fraction float64, elapsed time.Duration, r result, perTarget []result, targetURLs []string, localDrops uint64) {
	sort.Slice(r.latencies, func(i, j int) bool { return r.latencies[i] < r.latencies[j] })
	var mean, max time.Duration
	if n := len(r.latencies); n > 0 {
		var sum time.Duration
		for _, l := range r.latencies {
			sum += l
		}
		mean = sum / time.Duration(n)
		max = r.latencies[n-1]
	}
	p50 := percentile(r.latencies, 0.50)
	p95 := percentile(r.latencies, 0.95)
	p99 := percentile(r.latencies, 0.99)
	achievedQPS := float64(len(r.latencies)) / elapsed.Seconds()
	achievedRows := float64(r.rows) / elapsed.Seconds()
	shedRate := 0.0
	if r.requests > 0 {
		shedRate = float64(r.shed) / float64(r.requests)
	}

	if jsonOut {
		title := fmt.Sprintf("%s loop, %d conns", mode, concurrency)
		if mode == "open" {
			title += fmt.Sprintf(", %.0f req/s target", qps)
		}
		if fraction > 0 {
			title += fmt.Sprintf(", %.0f%% %d-row batches", fraction*100, batch)
		} else {
			title += ", single rows"
		}
		rep := jsonReport{
			Schema: "lam-loadgen/v1", URL: url, Model: model, Mode: mode,
			Concurrency: concurrency, TargetQPS: qps, DurationS: elapsed.Seconds(),
			Batch: batch, BatchFraction: fraction,
			Benchmarks: []jsonBenchmark{{
				ID: id, Title: title, NsPerOp: mean.Nanoseconds(),
				Requests: r.requests, Rows: r.rows,
				AchievedQPS: achievedQPS, AchievedRowsS: achievedRows,
				P50Ns: p50.Nanoseconds(), P95Ns: p95.Nanoseconds(),
				P99Ns: p99.Nanoseconds(), MaxNs: max.Nanoseconds(),
				Shed: r.shed, ShedRate: shedRate, Errors: r.errors,
				LocalDrops: localDrops,
			}},
		}
		if len(perTarget) > 1 {
			for t, tr := range perTarget {
				rep.PerTarget = append(rep.PerTarget, jsonTarget{
					URL: targetURLs[t], Requests: tr.requests, Rows: tr.rows,
					AchievedQPS: float64(len(tr.latencies)) / elapsed.Seconds(),
					Shed:        tr.shed, Errors: tr.errors,
				})
			}
		}
		for _, sr := range slowestOf(r) {
			rep.Slowest = append(rep.Slowest, jsonSlow{Ns: sr.lat.Nanoseconds(), TraceID: sr.id})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("requests %d (rows %d, %.1fs)\n", r.requests, r.rows, elapsed.Seconds())
		fmt.Printf("achieved %.1f req/s (%.1f rows/s)\n", achievedQPS, achievedRows)
		fmt.Printf("latency mean %s  p50 %s  p95 %s  p99 %s  max %s\n", mean, p50, p95, p99, max)
		fmt.Printf("shed %d (%.2f%%)  errors %d  local drops %d\n", r.shed, shedRate*100, r.errors, localDrops)
		for _, sr := range slowestOf(r) {
			fmt.Printf("slowest %-12s  trace %s\n", sr.lat, sr.id)
		}
		if len(perTarget) > 1 {
			for t, tr := range perTarget {
				fmt.Printf("target %s  %.1f req/s  (%d requests, %d rows, shed %d, errors %d)\n",
					targetURLs[t], float64(len(tr.latencies))/elapsed.Seconds(),
					tr.requests, tr.rows, tr.shed, tr.errors)
			}
		}
	}
	if r.errors > 0 {
		fmt.Fprintf(os.Stderr, "lam-loadgen: %d requests failed\n", r.errors)
	}
}

// slowestOf returns the run's slowest requests, slowest first.
func slowestOf(r result) []slowReq {
	out := append([]slowReq(nil), r.slow...)
	sort.Slice(out, func(i, j int) bool { return out[i].lat > out[j].lat })
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lam-loadgen:", err)
	os.Exit(1)
}

// Command lam-predict trains a performance predictor on a dataset CSV
// (as produced by lam-datagen) and reports held-out accuracy, following
// the paper's methodology: uniform random training sample, MAPE on the
// complement.
//
// Usage:
//
//	lam-predict -data fmm.csv -model hybrid -workload fmm -train 0.02
//	lam-predict -data grid.csv -model et -train 0.10
//
// Models: et (extra trees), rf (random forest), dt (decision tree),
// hybrid (requires -workload to select the analytical model).
//
// -workers bounds the worker pool used for ensemble fitting and batch
// prediction (0 = GOMAXPROCS, 1 = fully sequential); predictions are
// bit-identical for every value.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"lam"
	"lam/internal/dataset"
	"lam/internal/hybrid"
	"lam/internal/ml"
)

func main() {
	dataPath := flag.String("data", "", "dataset CSV (required)")
	model := flag.String("model", "et", "model: et, rf, dt, hybrid")
	workload := flag.String("workload", "", "workload name for the hybrid analytical model")
	machineName := flag.String("machine", "bluewaters", "machine preset for the analytical model")
	trainFrac := flag.Float64("train", 0.1, "training fraction (0, 1)")
	seed := flag.Int64("seed", 42, "sampling and model seed")
	trees := flag.Int("trees", 100, "ensemble size")
	show := flag.Int("show", 5, "example predictions to print")
	workers := flag.Int("workers", 0, "worker pool size for training and batch prediction (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	lam.SetWorkers(*workers)
	if *dataPath == "" {
		fatal(fmt.Errorf("-data is required"))
	}
	f, err := os.Open(*dataPath)
	if err != nil {
		fatal(err)
	}
	ds, err := dataset.ReadCSV(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	rng := rand.New(rand.NewSource(*seed))
	train, test, err := ds.SampleFraction(*trainFrac, rng)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset: %d rows (%d features); training on %d, testing on %d\n",
		ds.Len(), ds.NumFeatures(), train.Len(), test.Len())

	var predict func(x []float64) (float64, error)
	switch *model {
	case "hybrid":
		if *workload == "" {
			fatal(fmt.Errorf("hybrid model needs -workload to pick the analytical model"))
		}
		m, err := lam.MachineByName(*machineName)
		if err != nil {
			fatal(err)
		}
		am, err := lam.AnalyticalModelFor(*workload, m)
		if err != nil {
			fatal(err)
		}
		amMAPE, err := lam.AnalyticalMAPE(test, am)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("analytical model alone: MAPE %.2f%%\n", amMAPE)
		hy, err := lam.TrainHybrid(train, am, hybrid.Config{Seed: *seed, Workers: *workers})
		if err != nil {
			fatal(err)
		}
		predict = hy.Predict
	case "et", "rf", "dt":
		var reg ml.Regressor
		switch *model {
		case "et":
			reg = lam.NewExtraTrees(*trees, *seed)
		case "rf":
			reg = lam.NewRandomForest(*trees, *seed)
		default:
			reg = lam.NewDecisionTree(*seed)
		}
		if err := reg.Fit(train.X, train.Y); err != nil {
			fatal(err)
		}
		predict = func(x []float64) (float64, error) { return reg.Predict(x), nil }
	default:
		fatal(fmt.Errorf("unknown model %q", *model))
	}

	pred := make([]float64, test.Len())
	for i, x := range test.X {
		p, err := predict(x)
		if err != nil {
			fatal(err)
		}
		pred[i] = p
	}
	fmt.Printf("%s model: held-out MAPE %.2f%%\n", *model, lam.MAPE(test.Y, pred))

	n := *show
	if n > test.Len() {
		n = test.Len()
	}
	for i := 0; i < n; i++ {
		fmt.Printf("  x=%v  true=%.6gs  predicted=%.6gs\n", test.X[i], test.Y[i], pred[i])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lam-predict:", err)
	os.Exit(1)
}

// Command lam-predict trains a performance predictor on a dataset CSV
// (as produced by lam-datagen) and reports held-out accuracy, following
// the paper's methodology: uniform random training sample, MAPE on the
// complement.
//
// Usage:
//
//	lam-predict -data fmm.csv -model hybrid -workload fmm -train 0.02
//	lam-predict -data grid.csv -model et -train 0.10
//	lam-predict -data grid.csv -model hybrid -workload stencil-grid \
//	            -registry ./models -name grid-hybrid
//
// Models: et (extra trees), rf (random forest), dt (decision tree),
// hybrid (requires -workload to select the analytical model).
//
// With -registry and -name, the trained model is published as a new
// version in the model registry — metadata (workload, machine, train
// size, held-out MAPE) included — ready for lam-serve. -format picks
// the artifact encoding: lamb1 (the flat binary default, instant cold
// start) or jsonv1 (legacy JSON, readable by every build).
//
// -workers bounds the worker pool used for ensemble fitting and batch
// prediction (0 = GOMAXPROCS, 1 = fully sequential); predictions are
// bit-identical for every value.
//
// SIGINT/SIGTERM cancel the training context: long fits stop promptly
// and the process exits 130 without writing a partial registry version.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"syscall"

	"lam"
	"lam/internal/artifact"
	"lam/internal/dataset"
	"lam/internal/hybrid"
	"lam/internal/ml"
)

func main() {
	dataPath := flag.String("data", "", "dataset CSV (required)")
	model := flag.String("model", "et", "model: et, rf, dt, hybrid")
	workload := flag.String("workload", "", "workload name for the hybrid analytical model")
	machineName := flag.String("machine", "bluewaters", "machine preset for the analytical model")
	trainFrac := flag.Float64("train", 0.1, "training fraction (0, 1)")
	seed := flag.Int64("seed", 42, "sampling and model seed")
	trees := flag.Int("trees", 100, "ensemble size")
	show := flag.Int("show", 5, "example predictions to print")
	workers := flag.Int("workers", 0, "worker pool size for training and batch prediction (0 = GOMAXPROCS, 1 = sequential)")
	regDir := flag.String("registry", "", "publish the trained model into this registry directory (needs -name)")
	name := flag.String("name", "", "registry model name")
	format := flag.String("format", "", "artifact format for the published model: lamb1 (default) or jsonv1")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	lam.SetWorkers(*workers)
	if *dataPath == "" {
		fatal(fmt.Errorf("-data is required"))
	}
	if (*regDir == "") != (*name == "") {
		fatal(fmt.Errorf("-registry and -name must be used together"))
	}
	// Fail publish preconditions before the (potentially long) training
	// run, not after it.
	var modelRegistry *lam.Registry
	saveOpts := lam.SaveOptions{Format: *format}
	if *regDir != "" {
		if !lam.ValidModelName(*name) {
			fatal(fmt.Errorf("invalid registry model name %q (want lowercase [a-z0-9._-])", *name))
		}
		if _, err := artifact.ByName(*format); err != nil {
			fatal(err)
		}
		var err error
		if modelRegistry, err = lam.OpenRegistry(*regDir); err != nil {
			fatal(err)
		}
	}
	f, err := os.Open(*dataPath)
	if err != nil {
		fatal(err)
	}
	ds, err := dataset.ReadCSV(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	rng := rand.New(rand.NewSource(*seed))
	train, test, err := ds.SampleFraction(*trainFrac, rng)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset: %d rows (%d features); training on %d, testing on %d\n",
		ds.Len(), ds.NumFeatures(), train.Len(), test.Len())

	// Train through the v2 Predictor interface: the same path the
	// registry and lam-serve use, cancellable via ^C.
	var predictor lam.Predictor
	var publish func(reg *lam.Registry, meta lam.ModelMeta) (lam.ModelMeta, error)
	switch *model {
	case "hybrid":
		if *workload == "" {
			fatal(fmt.Errorf("hybrid model needs -workload to pick the analytical model"))
		}
		m, err := lam.MachineByName(*machineName)
		if err != nil {
			fatal(err)
		}
		am, err := lam.AnalyticalModelFor(*workload, m)
		if err != nil {
			fatal(err)
		}
		amMAPE, err := lam.AnalyticalMAPECtx(ctx, test, am)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("analytical model alone: MAPE %.2f%%\n", amMAPE)
		hy, err := lam.TrainHybridCtx(ctx, train, am, hybrid.Config{Seed: *seed, Workers: *workers})
		if err != nil {
			fatal(err)
		}
		predictor = lam.HybridPredictor(hy)
		publish = func(reg *lam.Registry, meta lam.ModelMeta) (lam.ModelMeta, error) {
			return reg.SaveHybridOpts(hy, meta, saveOpts)
		}
	case "et", "rf", "dt":
		var reg ml.Regressor
		switch *model {
		case "et":
			reg = lam.NewExtraTrees(*trees, *seed)
		case "rf":
			reg = lam.NewRandomForest(*trees, *seed)
		default:
			reg = lam.NewDecisionTree(*seed)
		}
		if err := ml.FitCtx(ctx, reg, train.X, train.Y); err != nil {
			fatal(err)
		}
		predictor = lam.MLPredictor(reg)
		publish = func(r *lam.Registry, meta lam.ModelMeta) (lam.ModelMeta, error) {
			return r.SaveRegressorOpts(reg, meta, saveOpts)
		}
	default:
		fatal(fmt.Errorf("unknown model %q", *model))
	}

	pred, err := predictor.PredictBatch(ctx, test.X)
	if err != nil {
		fatal(err)
	}
	testMAPE := lam.MAPE(test.Y, pred)
	fmt.Printf("%s model: held-out MAPE %.2f%%\n", *model, testMAPE)

	n := *show
	if n > test.Len() {
		n = test.Len()
	}
	for i := 0; i < n; i++ {
		fmt.Printf("  x=%v  true=%.6gs  predicted=%.6gs\n", test.X[i], test.Y[i], pred[i])
	}

	if modelRegistry != nil {
		meta, err := publish(modelRegistry, lam.ModelMeta{
			Name:      *name,
			Workload:  *workload,
			Machine:   *machineName,
			TrainSize: train.Len(),
			TestMAPE:  testMAPE,
			Notes:     fmt.Sprintf("lam-predict -data %s -model %s -train %g -seed %d", *dataPath, *model, *trainFrac, *seed),
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("published %s v%d to %s\n", meta.Name, meta.Version, *regDir)
	}
}

func fatal(err error) {
	if errors.Is(err, lam.ErrCancelled) {
		fmt.Fprintln(os.Stderr, "lam-predict: interrupted:", err)
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "lam-predict:", err)
	os.Exit(1)
}

// Command lam-stencil runs the real 7-point 3-D stencil kernels on this
// machine: it executes the requested configuration, verifies the result
// against the naive reference kernel, and reports wall-clock throughput.
// This is the runnable counterpart of the configuration space the
// performance models score.
//
// Usage:
//
//	lam-stencil -i 128 -j 128 -k 128 -bi 16 -bj 16 -bk 8 -u 4 -t 8 -steps 10
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lam/internal/stencil"
)

func main() {
	i := flag.Int("i", 128, "grid dimension I (fastest varying)")
	j := flag.Int("j", 128, "grid dimension J")
	k := flag.Int("k", 128, "grid dimension K")
	bi := flag.Int("bi", 0, "block size in I (0 = unblocked)")
	bj := flag.Int("bj", 0, "block size in J")
	bk := flag.Int("bk", 0, "block size in K")
	u := flag.Int("u", 0, "inner-loop unroll factor (0..8)")
	t := flag.Int("t", 1, "threads")
	steps := flag.Int("steps", 5, "time steps")
	verify := flag.Bool("verify", true, "verify against the reference kernel")
	flag.Parse()

	cfg := stencil.Config{BI: *bi, BJ: *bj, BK: *bk, Unroll: *u, Threads: *t, TimeSteps: *steps}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	src, err := stencil.NewGrid(*i, *j, *k)
	if err != nil {
		fatal(err)
	}
	src.Fill(func(x, y, z int) float64 {
		return float64((x*31+y*17+z*7)%101) / 101
	})
	dst := src.Clone()

	start := time.Now()
	out, err := stencil.Run(src.Clone(), dst, cfg)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	points := float64(*i) * float64(*j) * float64(*k) * float64(*steps)
	fmt.Printf("grid %dx%dx%d  blocks %dx%dx%d  unroll %d  threads %d  steps %d\n",
		*i, *j, *k, cfg.BI, cfg.BJ, cfg.BK, *u, *t, *steps)
	fmt.Printf("elapsed: %v  (%.1f Mpoints/s, %.2f GFLOP/s)\n",
		elapsed, points/elapsed.Seconds()/1e6,
		points*stencil.FlopsPerPoint/elapsed.Seconds()/1e9)

	if *verify {
		ra, rb := src.Clone(), src.Clone()
		for s := 0; s < *steps; s++ {
			if err := stencil.Reference(ra, rb, 0, 0); err != nil {
				fatal(err)
			}
			ra, rb = rb, ra
		}
		diff, err := out.MaxAbsDiff(ra)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("verification: max |diff| vs reference = %g\n", diff)
		if diff > 1e-12 {
			fatal(fmt.Errorf("verification failed: diff %g", diff))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lam-stencil:", err)
	os.Exit(1)
}

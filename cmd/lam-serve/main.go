// Command lam-serve is the HTTP prediction service: it loads trained
// models from a registry directory (as written by lam-predict
// -registry or lam.Registry) and answers JSON prediction requests
// bit-identical to the equivalent library calls.
//
// Usage:
//
//	lam-serve -registry ./models [-addr :8080] [-workers N]
//	         [-max-batch 32] [-max-delay 1ms]
//	         [-max-inflight 0] [-queue 64]
//	         [-warm name1,name2] [-inject-latency 0]
//	         [-layout implicit-left] [-pprof localhost:6060]
//	         [-online] [-window 512] [-drift-threshold 1.5]
//	         [-min-samples 64] [-holdout 0.25]
//	         [-rollout] [-rollout-stages 0.01,0.10,0.50,1.0]
//	         [-rollout-shadow-samples 64] [-rollout-stage-samples 64]
//	         [-rollout-margin 0.95] [-rollout-holddown 1h]
//	         [-log-format text] [-trace-slow 0]
//
// Throughput knobs: -max-batch/-max-delay micro-batch concurrent
// single-row /predict requests into one compiled-plane batch (bit
// identical to unbatched scoring; <= 1 disables); -max-inflight/-queue
// bound concurrency and shed overload with 429 + Retry-After (0
// disables admission control); -layout picks the tree-traversal layout
// applied to every loaded model (exact layouts are bit-identical,
// quantized ones trade bounded accuracy for a ~4x smaller table);
// -pprof exposes net/http/pprof on a separate listener for CPU/heap
// profiling under load. See the README's "Capacity planning & tuning"
// section and cmd/lam-loadgen for measuring the effect.
//
// Endpoints:
//
//	GET  /healthz  — liveness + stored-model count
//	GET  /readyz   — readiness: registry reachable and every -warm
//	                 model resident (503 while warming; the endpoint a
//	                 fleet gateway health-checks)
//	GET  /models   — every stored model version's metadata
//	GET  /metrics  — Prometheus text exposition
//	GET  /trace/recent — the last 256 finished request traces
//	POST /predict  — {"model":"name","x":[…]} or
//	                 {"model":"name","version":2,"batch":[[…],[…]]}
//
// With -online, the continuous-learning plane is attached:
//
//	POST /observe              — ground-truth ingest (single or batch)
//	GET  /models/{name}/drift  — window accuracy + detector state
//
// Observed runtimes feed a per-model sliding window; when the windowed
// MAPE degrades past -drift-threshold × the model's recorded test
// MAPE, a background retrain merges the window with the original
// training set and republishes only if it improves — the server then
// hot-swaps to the new version without interrupting in-flight
// requests. See cmd/lam-replay for an end-to-end demonstration.
//
// With -rollout (requires -online), retrained or out-of-band published
// versions go through progressive delivery instead of swapping in
// directly: the candidate shadow-scores live traffic, then serves a
// deterministically hashed fraction through the -rollout-stages canary
// steps, and is promoted only when its windowed served-APE p50/p90
// beat the incumbent's by the -rollout-margin ratio at every gate; a
// candidate that fails a gate is rolled back and quarantined for
// -rollout-holddown. The state machine is driven and inspected over
// HTTP:
//
//	GET  /models/{name}/rollout — phase, stage, windows, hold-downs
//	POST /models/{name}/rollout — {"action":"pause"|"resume"|
//	                               "promote"|"rollback"}
//
// Rollout state persists in the registry (rollout.json next to the
// model's version directories), so a restarted server resumes an
// in-flight rollout — pin, phase and quarantine intact — rather than
// blindly serving the newest artifact.
//
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight requests get a
// drain window, new connections are refused. See the README's
// "Serving predictions" and "Online adaptation" sections for curl
// quickstarts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the DefaultServeMux the -pprof listener serves
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"lam"
	"lam/internal/online"
	"lam/internal/rollout"
	"lam/internal/serve"
	"lam/internal/telemetry"
)

// parseStages parses the -rollout-stages comma list of fractions.
func parseStages(s string) ([]float64, error) {
	var out []float64
	prev := 0.0
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("-rollout-stages: bad fraction %q: %w", part, err)
		}
		if f <= prev || f > 1 {
			return nil, fmt.Errorf("-rollout-stages: fractions must ascend in (0, 1], got %q", s)
		}
		out = append(out, f)
		prev = f
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-rollout-stages: no fractions in %q", s)
	}
	return out, nil
}

// lg is the process logger, replaced in main once -log-format is
// parsed.
var lg = slog.Default()

// servePprof exposes the runtime profiler on its own listener, kept off
// the API address so profiling endpoints are never internet-facing by
// accident. The prediction mux is a dedicated ServeMux, so the pprof
// handlers registered on the DefaultServeMux are reachable only here.
func servePprof(addr string) {
	lg.Info("pprof listening", "url", "http://"+addr+"/debug/pprof/")
	if err := http.ListenAndServe(addr, nil); err != nil {
		lg.Error("pprof listener failed", "err", err)
	}
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	regDir := flag.String("registry", "", "model registry directory (required; see lam-predict -registry)")
	workers := flag.Int("workers", 0, "worker pool size for batch prediction (0 = GOMAXPROCS, 1 = sequential)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
	maxBatch := flag.Int("max-batch", 32, "coalesce up to this many concurrent single-row /predict requests into one batch (<= 1 disables)")
	maxDelay := flag.Duration("max-delay", time.Millisecond, "longest a coalesced request waits for batch-mates before a partial flush")
	maxInflight := flag.Int("max-inflight", 0, "bound on concurrently served /predict requests (0 disables admission control)")
	queueLen := flag.Int("queue", 64, "requests allowed to wait for an in-flight slot beyond -max-inflight; a full queue sheds with 429")
	warm := flag.String("warm", "", "comma-separated model names to preload; GET /readyz reports 503 until all are resident (fleet readiness gate)")
	layoutFlag := flag.String("layout", "", "traversal layout applied to every loaded model: default, implicit-left (branchless), standard, level-order, quant16, quant8 (quantized layouts are approximate; see README)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty disables)")
	injectLatency := flag.Duration("inject-latency", 0, "fault injection: sleep this long inside every /predict while holding its admission slot (fleet/capacity testing only; 0 = off)")
	onlineOn := flag.Bool("online", false, "enable the online adaptation plane (/observe ingest, drift detection, background retrain, hot swap)")
	window := flag.Int("window", 512, "online: per-model observation window size")
	driftThreshold := flag.Float64("drift-threshold", 1.5, "online: trip when windowed MAPE exceeds this factor × the model's recorded test MAPE")
	minSamples := flag.Int("min-samples", 64, "online: windowed samples required before the drift detector may trip")
	holdout := flag.Float64("holdout", 0.25, "online: fraction of the window held out to judge a retrained model")
	seed := flag.Int64("seed", 1, "online: seed for retrain splits and model randomness")
	rolloutOn := flag.Bool("rollout", false, "enable progressive delivery: new versions shadow-score, canary through staged traffic fractions, and promote or roll back on windowed APE (requires -online)")
	rolloutStages := flag.String("rollout-stages", "0.01,0.10,0.50,1.0", "rollout: comma-separated canary traffic fractions, ascending in (0, 1]")
	rolloutShadow := flag.Int("rollout-shadow-samples", 64, "rollout: candidate-scored observations the shadow gate needs before deciding")
	rolloutStage := flag.Int("rollout-stage-samples", 64, "rollout: candidate-served observations each canary gate needs")
	rolloutMargin := flag.Float64("rollout-margin", 0.95, "rollout: promote only when candidate windowed p50/p90 APE <= this ratio x the incumbent's")
	rolloutHolddown := flag.Duration("rollout-holddown", time.Hour, "rollout: quarantine window before a rolled-back version may canary again")
	logFormat := flag.String("log-format", "text", "structured-log output format: text or json")
	traceSlow := flag.Duration("trace-slow", 0, "log the span tree of any request slower than this (0 disables)")
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		fatal(err)
	}
	lg = logger.With("component", "lam-serve")

	lam.SetWorkers(*workers)
	if *regDir == "" {
		fatal(fmt.Errorf("-registry is required"))
	}
	reg, err := lam.OpenRegistry(*regDir)
	if err != nil {
		fatal(err)
	}
	metas, err := reg.List()
	if err != nil {
		fatal(err)
	}
	lg.Info("registry opened", "dir", *regDir, "versions", len(metas))
	for _, m := range metas {
		lg.Info("stored model", "model", m.Name, "version", m.Version, "kind", m.Kind,
			"workload", m.Workload, "machine", m.Machine)
	}

	if *pprofAddr != "" {
		go servePprof(*pprofAddr)
	}

	s := serve.New(reg)
	s.Workers = *workers
	s.Log = lg
	s.Tracer.Slow = *traceSlow
	s.Tracer.Logger = lg
	if *layoutFlag != "" {
		layout, err := lam.ParseLayout(*layoutFlag)
		if err != nil {
			fatal(err)
		}
		s.Layout = layout
		lg.Info("traversal layout set", "layout", layout.String())
	}
	s.Coalesce = serve.CoalesceConfig{MaxBatch: *maxBatch, MaxDelay: *maxDelay}
	s.Admit = serve.AdmitConfig{MaxInflight: *maxInflight, Queue: *queueLen}
	if s.Coalesce.MaxBatch > 1 {
		lg.Info("coalescing enabled", "max_batch", *maxBatch, "max_delay", *maxDelay)
	}
	if *maxInflight > 0 {
		lg.Info("admission control enabled", "max_inflight", *maxInflight, "queue", *queueLen)
	}
	if *injectLatency > 0 {
		s.InjectLatency = *injectLatency
		lg.Warn("fault injection enabled: added latency per /predict (testing aid, not for production)",
			"inject_latency", *injectLatency)
	}
	if *warm != "" {
		for _, name := range strings.Split(*warm, ",") {
			if name = strings.TrimSpace(name); name != "" {
				s.WarmNames = append(s.WarmNames, name)
			}
		}
		// Warm concurrently with serving: the listener comes up
		// immediately and /readyz flips to 200 once every named model
		// is resident.
		go func() {
			if err := s.Warm(); err != nil {
				lg.Error("warm failed; readyz will not report ready", "err", err)
				return
			}
			lg.Info("warmed, ready", "models", len(s.WarmNames))
		}()
	}
	if *onlineOn {
		plane := online.New(reg, online.Config{
			WindowSize: *window,
			Detector: online.DetectorConfig{
				DegradeFactor: *driftThreshold,
				MinSamples:    *minSamples,
			},
			HoldoutFraction: *holdout,
			Seed:            *seed,
			Workers:         *workers,
		})
		defer plane.Close()
		s.AttachOnline(plane)
		lg.Info("online adaptation enabled", "window", *window,
			"drift_threshold", *driftThreshold, "min_samples", *minSamples)
	}
	if *rolloutOn {
		if !*onlineOn {
			fatal(fmt.Errorf("-rollout requires -online (the rollout gates feed on /observe ground truth)"))
		}
		stages, err := parseStages(*rolloutStages)
		if err != nil {
			fatal(err)
		}
		ctrl := rollout.New(reg, rollout.Config{
			Stages:        stages,
			ShadowSamples: *rolloutShadow,
			StageSamples:  *rolloutStage,
			PromoteRatio:  *rolloutMargin,
			WindowSize:    *window,
			Holddown:      *rolloutHolddown,
		})
		s.AttachRollout(ctrl)
		lg.Info("progressive delivery enabled", "stages", ctrl.Config().Stages,
			"shadow_samples", *rolloutShadow, "stage_samples", *rolloutStage,
			"margin", *rolloutMargin, "holddown", *rolloutHolddown)
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: s.Handler(),
		// Per-request contexts are cancelled when the client
		// disconnects, which cancels in-flight batch predictions
		// between rows. The timeouts close the slow-client
		// (slowloris) connection-exhaustion hole; large batches are
		// bounded by the serve layer's request-size cap rather than a
		// write timeout, so slow *predictions* still complete.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		lg.Info("listening", "addr", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills hard
		lg.Info("shutting down", "drain", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fatal(fmt.Errorf("shutdown: %w", err))
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

func fatal(err error) {
	lg.Error("fatal", "err", err)
	os.Exit(1)
}

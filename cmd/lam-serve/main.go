// Command lam-serve is the HTTP prediction service: it loads trained
// models from a registry directory (as written by lam-predict
// -registry or lam.Registry) and answers JSON prediction requests
// bit-identical to the equivalent library calls.
//
// Usage:
//
//	lam-serve -registry ./models [-addr :8080] [-workers N]
//
// Endpoints:
//
//	GET  /healthz  — liveness + stored-model count
//	GET  /models   — every stored model version's metadata
//	POST /predict  — {"model":"name","x":[…]} or
//	                 {"model":"name","version":2,"batch":[[…],[…]]}
//
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight requests get a
// drain window, new connections are refused. See the README's
// "Serving predictions" section for a curl quickstart.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lam"
	"lam/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	regDir := flag.String("registry", "", "model registry directory (required; see lam-predict -registry)")
	workers := flag.Int("workers", 0, "worker pool size for batch prediction (0 = GOMAXPROCS, 1 = sequential)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
	flag.Parse()

	lam.SetWorkers(*workers)
	if *regDir == "" {
		fatal(fmt.Errorf("-registry is required"))
	}
	reg, err := lam.OpenRegistry(*regDir)
	if err != nil {
		fatal(err)
	}
	metas, err := reg.List()
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "lam-serve: registry %s holds %d model version(s)\n", *regDir, len(metas))
	for _, m := range metas {
		fmt.Fprintf(os.Stderr, "lam-serve:   %s v%d (%s", m.Name, m.Version, m.Kind)
		if m.Workload != "" {
			fmt.Fprintf(os.Stderr, ", %s on %s", m.Workload, m.Machine)
		}
		fmt.Fprintln(os.Stderr, ")")
	}

	s := serve.New(reg)
	s.Workers = *workers
	srv := &http.Server{
		Addr:    *addr,
		Handler: s.Handler(),
		// Per-request contexts are cancelled when the client
		// disconnects, which cancels in-flight batch predictions
		// between rows. The timeouts close the slow-client
		// (slowloris) connection-exhaustion hole; large batches are
		// bounded by the serve layer's request-size cap rather than a
		// write timeout, so slow *predictions* still complete.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "lam-serve: listening on %s\n", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills hard
		fmt.Fprintf(os.Stderr, "lam-serve: shutting down (drain %s)\n", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fatal(fmt.Errorf("shutdown: %w", err))
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lam-serve:", err)
	os.Exit(1)
}
